//! Determinism under sharding: the same seed must produce bit-identical
//! shard builds, query answers and update outcomes at any rayon thread
//! count (the "determinism-under-sharding rules" of `DESIGN.md` §9).

use elsi::{Elsi, ElsiConfig};
use elsi_data::stream::Update;
use elsi_indices::{SpatialIndex, ZmIndex};
use elsi_serve::{Router, ShardStats, ShardedConfig, ShardedIndex};
use elsi_spatial::{Point, Rect};

type Fingerprint = (
    Vec<ShardStats>,
    Vec<Point>,      // boundary-heavy window result (canonical order)
    Vec<Vec<Point>>, // batched kNN answers
    usize,           // rebuilds triggered by the update batch
    Vec<ShardStats>, // stats after the update batch
);

/// One full serve lifecycle over an already-built deployment: batched
/// queries, one batched update wave, queries again.
fn lifecycle<R: Router>(mut sharded: ShardedIndex<ZmIndex, R>) -> Fingerprint {
    let stats_before = sharded.shard_stats();
    let window = sharded.window_query(&Rect::new(0.25, 0.25, 0.75, 0.75));
    let queries: Vec<Point> = elsi_data::gen::uniform(32, 77);
    let knn = sharded.par_knn_queries(&queries, 7);

    let mut updates: Vec<Update> = elsi_data::stream::skewed_insertions(600, 5);
    updates.extend(
        sharded
            .window_query(&Rect::new(0.0, 0.0, 0.3, 0.3))
            .into_iter()
            .take(50)
            .map(Update::Delete),
    );
    let rebuilds = sharded.par_apply_updates(&updates);
    (stats_before, window, knn, rebuilds, sharded.shard_stats())
}

/// Runs the lifecycle for both routing policies — grid and learned — over
/// the same data. The learned deployment re-fits its CDF router from the
/// points on every call, so router fitting is inside the fingerprint too.
fn serve_lifecycle() -> (Fingerprint, Fingerprint) {
    let cfg = ShardedConfig::grid(2, 2);
    let points = elsi_data::gen::osm1_like(2_000, 33);
    let grid = {
        let elsi = Elsi::new(ElsiConfig::fast_test());
        ShardedIndex::zm(points.clone(), &cfg, &elsi)
    };
    let learned = {
        let elsi = Elsi::new(ElsiConfig::fast_test());
        ShardedIndex::zm_learned(points, &cfg, &elsi)
    };
    (lifecycle(grid), lifecycle(learned))
}

#[test]
fn sharded_serving_is_bit_identical_across_thread_counts() {
    // The vendored rayon pool is re-callable (last call wins).
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build_global();
    let reference = serve_lifecycle();
    // Grid and learned deployments partition differently (their stats and
    // rebuild counts may differ) but must answer queries identically.
    assert_eq!(reference.0 .1, reference.1 .1, "window answers diverge");
    assert_eq!(reference.0 .2, reference.1 .2, "kNN answers diverge");
    for threads in [2, 8] {
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global();
        assert_eq!(
            reference,
            serve_lifecycle(),
            "divergence at {threads} threads"
        );
    }
    // Restore auto-detection for the rest of the test binary.
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global();
}

#[test]
fn rebuilt_shards_stay_deterministic() {
    // Force rebuilds by hammering one shard; reruns must agree exactly.
    let run = || {
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let points = elsi_data::gen::uniform(1_000, 9);
        let mut sharded = ShardedIndex::zm(points, &ShardedConfig::grid(2, 2), &elsi);
        let hotspot: Vec<Update> = (0..800)
            .map(|i| {
                let t = i as f64 / 800.0;
                Update::Insert(Point::new(
                    1_000_000 + i as u64,
                    0.05 + 0.01 * t,
                    0.05 + 0.01 * t,
                ))
            })
            .collect();
        let rebuilds = sharded.par_apply_updates(&hotspot);
        (
            rebuilds,
            sharded.shard_stats(),
            sharded.knn_query(Point::at(0.06, 0.06), 9),
        )
    };
    let a = run();
    assert!(a.0 >= 1, "hotspot must trigger at least one shard rebuild");
    assert_eq!(a, run());
}
