//! `LearnedRouter` contract invariants pinned by proptest.
//!
//! The serving layer's correctness proof (`DESIGN.md` §9, §13) rests only
//! on the `Router` contract — ownership is a pure function of coordinates
//! and closed rectangles cover it — so these tests pin exactly that, on
//! adversarial samples: boundary-snapped coordinates, duplicate-heavy
//! runs (degenerate axes that exercise the grid-cut fallback), and every
//! grid shape up to 5×5. A second suite pins that swapping the grid
//! router for the learned one changes *nothing* about query answers.

use elsi::RebuildPolicy;
use elsi_indices::{GridConfig, GridIndex, SpatialIndex};
use elsi_serve::{LearnedRouter, Router, ShardedConfig, ShardedIndex};
use elsi_spatial::{Point, Rect};
use proptest::prelude::*;

/// Mixed workload points: continuous coordinates plus grid-snapped ones
/// (multiples of 1/8 land exactly on uniform-cut boundaries — the learned
/// fallback's cut positions), with ids folded so they repeat.
fn assemble(continuous: &[(f64, f64)], snapped: &[(u32, u32)], id_modulus: u64) -> Vec<Point> {
    continuous
        .iter()
        .copied()
        .chain(
            snapped
                .iter()
                .map(|&(i, j)| (f64::from(i) / 8.0, f64::from(j) / 8.0)),
        )
        .enumerate()
        .map(|(i, (x, y))| Point::new(i as u64 % id_modulus, x, y))
        .collect()
}

/// A 17×17 probe lattice over the closed unit square (includes 0.0, 1.0
/// and the 1/8 multiples the snapped points sit on).
fn lattice() -> Vec<Point> {
    let mut out = Vec::new();
    for i in 0..=16 {
        for j in 0..=16 {
            out.push(Point::at(i as f64 / 16.0, j as f64 / 16.0));
        }
    }
    out
}

fn grid_index_builder() -> impl Fn(&elsi_serve::ShardContext, Vec<Point>) -> GridIndex {
    |_ctx, pts| GridIndex::build(pts, &GridConfig { block_size: 8 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn learned_router_upholds_the_router_contract(
        continuous in prop::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 0..200),
        snapped in prop::collection::vec((0u32..=8, 0u32..=8), 0..60),
        dup_run in 0usize..48,
        rows in 1usize..6,
        cols in 1usize..6,
    ) {
        let mut points = assemble(&continuous, &snapped, u64::MAX);
        // A duplicate-heavy atom: pushes one column's (or the whole
        // sample's) mass onto a single coordinate so quantile cuts
        // collapse and the grid-cut fallback must kick in.
        points.extend((0..dup_run).map(|i| Point::new(900_000 + i as u64, 0.375, 0.625)));
        let r = LearnedRouter::fit(&points, rows, cols);

        // Well-formed cuts: strictly increasing, anchored at 0 and 1 —
        // no empty or inverted cells even on fully degenerate samples.
        prop_assert_eq!(r.x_cuts().len(), cols + 1);
        prop_assert_eq!(r.x_cuts().first().copied(), Some(0.0));
        prop_assert_eq!(r.x_cuts().last().copied(), Some(1.0));
        prop_assert!(r.x_cuts().iter().zip(r.x_cuts().iter().skip(1)).all(|(a, b)| a < b));
        for c in 0..cols {
            let cuts = r.y_cuts(c).unwrap_or(&[]);
            prop_assert_eq!(cuts.len(), rows + 1, "col {}", c);
            prop_assert_eq!(cuts.first().copied(), Some(0.0));
            prop_assert_eq!(cuts.last().copied(), Some(1.0));
            prop_assert!(cuts.iter().zip(cuts.iter().skip(1)).all(|(a, b)| a < b));
        }

        // Contract 1 + 2: ownership is total and the owner's closed rect
        // contains the point — for every training point and for a lattice
        // covering [0,1]² (which also shows the rects cover the square).
        for p in points.iter().chain(lattice().iter()) {
            let s = r.shard_of(*p);
            prop_assert!(s < r.num_shards());
            prop_assert!(r.shard_rect(s).contains(p), "rect must cover owner of {:?}", p);
        }

        // Tie rule: a coordinate exactly on an interior cut belongs to
        // the *higher* cell. Column c starts at x_cuts[c]; row rr of
        // column c starts at y_cuts(c)[rr].
        for c in 1..cols {
            let cut = r.x_cuts().get(c).copied().unwrap_or(0.0);
            prop_assert_eq!(r.shard_of(Point::at(cut, 0.0)) % cols, c, "x cut {}", c);
        }
        for c in 0..cols {
            let lo = r.x_cuts().get(c).copied().unwrap_or(0.0);
            let hi = r.x_cuts().get(c + 1).copied().unwrap_or(1.0);
            let x = (lo + hi) / 2.0;
            let cuts = r.y_cuts(c).unwrap_or(&[]);
            for rr in 1..rows {
                let cut = cuts.get(rr).copied().unwrap_or(0.0);
                let s = r.shard_of(Point::at(x, cut));
                prop_assert_eq!(s / cols, rr, "col {} y cut {}", c, rr);
            }
        }

        // Window routing covers ownership: any point of the window routes
        // to a listed shard, and the listing is ascending.
        let w = Rect::new(0.1, 0.05, 0.8, 0.7);
        let shards = r.shards_for_window(&w);
        prop_assert!(shards.iter().zip(shards.iter().skip(1)).all(|(a, b)| a < b));
        for i in 0..=10 {
            for j in 0..=10 {
                let p = Point::at(
                    w.lo_x + (w.hi_x - w.lo_x) * i as f64 / 10.0,
                    w.lo_y + (w.hi_y - w.lo_y) * j as f64 / 10.0,
                );
                prop_assert!(shards.contains(&r.shard_of(p)), "window point {:?}", p);
            }
        }
        prop_assert!(r.shards_for_window(&Rect::empty()).is_empty());
    }

    #[test]
    fn grid_and_learned_answers_are_bit_identical(
        continuous in prop::collection::vec((0.0f64..=1.0, 0.0f64..=1.0), 0..150),
        snapped in prop::collection::vec((0u32..=8, 0u32..=8), 0..40),
        id_modulus in 1u64..60,
        rows in 1usize..5,
        cols in 1usize..5,
        q in (0.0f64..=1.0, 0.0f64..=1.0),
        k in 0usize..20,
    ) {
        let points = assemble(&continuous, &snapped, id_modulus);
        let cfg = ShardedConfig::grid(rows, cols);
        let grid = ShardedIndex::build_grid(
            points.clone(), &cfg, grid_index_builder(), |_s| RebuildPolicy::Never);
        let learned = ShardedIndex::build_learned(
            points.clone(), &cfg, grid_index_builder(), |_s| RebuildPolicy::Never);

        // Windows and kNN are canonically ordered, so equal sets are
        // bit-identical regardless of how points were sharded.
        let qp = Point::at(q.0, q.1);
        let windows = [
            Rect::window_around(qp, 0.1),
            Rect::new(0.25, 0.125, 0.75, 0.5),
            Rect::unit(),
        ];
        for w in &windows {
            prop_assert_eq!(grid.window_query(w), learned.window_query(w), "{:?}", w);
        }
        prop_assert_eq!(grid.knn_query(qp, k), learned.knn_query(qp, k));
        let qs: Vec<Point> = points.iter().take(16).copied().chain([qp]).collect();
        prop_assert_eq!(grid.par_knn_queries(&qs, k), learned.par_knn_queries(&qs, k));

        // Point lookups return *a* stored point at the queried
        // coordinates; with coordinate duplicates which copy surfaces
        // first is the inner index's layout choice, so compare by
        // coordinate bits.
        let coords = |o: Option<Point>| o.map(|p| (p.x.to_bits(), p.y.to_bits()));
        for p in points.iter().take(40) {
            prop_assert_eq!(
                coords(grid.point_query(*p)),
                coords(learned.point_query(*p)),
                "{:?}", p
            );
        }
        prop_assert_eq!(
            grid.point_query(Point::at(0.123456789, 0.987654321)),
            learned.point_query(Point::at(0.123456789, 0.987654321))
        );
    }
}
