//! Sharded serving end to end: build a 2×2 ZM-F deployment, run batched
//! queries, pour an update hotspot onto one shard and watch only that
//! shard rebuild. (The README "Serving" section walks through this file.)
//!
//! Run with: `cargo run --release -p elsi-serve --example sharded_serving`

use elsi::{Elsi, ElsiConfig};
use elsi_data::stream::Update;
use elsi_indices::SpatialIndex;
use elsi_serve::{ShardedConfig, ShardedIndex};
use elsi_spatial::Point;

fn main() {
    // One ELSI system, shared by every shard's (re)build.
    let elsi = Elsi::new(ElsiConfig::fast_test());
    let points = elsi_data::gen::osm1_like(20_000, 42);

    // 2×2 grid: four independent UpdateProcessor<DeltaOverlay<ZmIndex>>
    // shards, built in parallel with per-shard deterministic seeds.
    let mut sharded = ShardedIndex::zm(points, &ShardedConfig::grid(2, 2), &elsi);
    println!(
        "built {} shards, {} points total",
        sharded.num_shards(),
        sharded.len()
    );

    // Batched queries fan out on the rayon pool; the cross-shard kNN
    // merge is exact (DESIGN.md §9).
    let queries: Vec<Point> = elsi_data::gen::uniform(1_000, 7);
    let answers = sharded.par_knn_queries(&queries, 10);
    println!("batched kNN: {} queries answered", answers.len());
    let nearest = &answers[0][0];
    println!(
        "nearest to ({:.3}, {:.3}): id {} at ({:.3}, {:.3})",
        queries[0].x, queries[0].y, nearest.id, nearest.x, nearest.y
    );

    // A check-in hotspot lands on shard 0 only (all points near the
    // origin). The router sends every update there; the other three
    // shards never rebuild — that is the point of sharding ELSI.
    let hotspot: Vec<Update> = (0..15_000)
        .map(|i| {
            let t = i as f64 / 15_000.0;
            Update::Insert(Point::new(
                1_000_000 + i as u64,
                0.05 + 0.1 * t,
                0.05 + 0.1 * t,
            ))
        })
        .collect();
    let rebuilds = sharded.par_apply_updates(&hotspot);
    println!("hotspot applied: {rebuilds} shard rebuild(s)");
    for s in sharded.shard_stats() {
        println!(
            "  shard {}: {} live, {} pending, {} in delta, {} rebuilds",
            s.shard, s.live_len, s.pending_updates, s.delta_len, s.rebuilds
        );
    }
}
