//! The sharded index: per-shard ELSI update lifecycles behind one façade.
//!
//! Each shard is an `UpdateProcessor<DeltaOverlay<I>>` — the full update
//! machinery of the paper (§IV-B2: delta layer, drift tracking, rebuild
//! policy) scoped to one grid cell. Queries are routed by a [`Router`],
//! kNN results are merged *exactly* across shards (proof sketch in
//! `DESIGN.md` §9), and batched entry points fan queries out on the rayon
//! pool. All hot-path load probes go through the O(1) accessors
//! `UpdateProcessor::{live_len, n_at_build, pending_updates}` — routing
//! never recomputes drift features and never takes a lock (`ShardedIndex`
//! owns its shards; updates are `&mut self`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use elsi::{DeltaOverlay, Elsi, RebuildFn, RebuildPolicy, UpdateOutcome, UpdateProcessor};
use elsi_data::stream::Update;
use elsi_indices::{
    par_knn_queries_of, par_point_queries_of, par_window_queries_of, SpatialIndex, ZmConfig,
    ZmIndex,
};
use elsi_spatial::{KnnEntry, Point, Rect, ScanScratch};
use rayon::prelude::*;

use crate::router::{GridRouter, LearnedRouter, Router};

/// Shape and seeding of a sharded deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Per-shard update-processor check frequency (`f_u` of §IV-B2).
    pub f_u: usize,
    /// Root seed; each shard derives its own seed from it (see
    /// [`shard_seed`]).
    pub seed: u64,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            rows: 2,
            cols: 2,
            f_u: 64,
            seed: 42,
        }
    }
}

impl ShardedConfig {
    /// A `rows × cols` deployment with default `f_u` and seed.
    pub fn grid(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            ..Self::default()
        }
    }
}

/// Deterministic per-shard seed: the same `root ^ (id * odd-constant)`
/// discipline the method scorer uses for per-cell measurement seeds, so
/// shard builds are reproducible no matter which rayon worker runs them.
pub fn shard_seed(root: u64, shard: usize) -> u64 {
    root ^ (shard as u64).wrapping_mul(131)
}

/// Everything a shard builder closure may want to know about the shard it
/// is building: its id, its territory, and its deterministic seed.
#[derive(Debug, Clone, Copy)]
pub struct ShardContext {
    /// Shard id (row-major for the grid router).
    pub shard: usize,
    /// The shard's closed territory rectangle.
    pub rect: Rect,
    /// Seed derived via [`shard_seed`]; builders that randomise (sampling,
    /// model init) must draw from this and nothing else.
    pub seed: u64,
}

/// O(1) load snapshot of one shard, for routing/monitoring decisions.
/// Every field reads a counter — no drift-feature recomputation, no locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard id.
    pub shard: usize,
    /// Live points currently owned by the shard.
    pub live_len: usize,
    /// Points at the last (re)build.
    pub n_at_build: usize,
    /// Updates applied since the last (re)build.
    pub pending_updates: usize,
    /// Size of the delta layer (buffered inserts + tombstones).
    pub delta_len: usize,
    /// Rebuilds triggered so far.
    pub rebuilds: usize,
}

// The canonical point/kNN orders now live in `elsi_spatial` so the
// `DeltaOverlay` kNN path can share them; re-exported here because the
// serving layer is where cross-shard merges make them load-bearing.
pub use elsi_spatial::{canonical_knn_cmp, canonical_point_key};

/// Max-heap entry for the kNN threshold phase: squared distance under
/// total order.
struct HeapDist(f64);

impl PartialEq for HeapDist {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for HeapDist {}
impl PartialOrd for HeapDist {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapDist {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// An R×C-sharded serving deployment: one [`UpdateProcessor`] per shard,
/// one [`Router`] in front.
///
/// The struct *owns* its shards and updates take `&mut self`, so the query
/// hot path holds no lock anywhere — concurrency comes from batching
/// (`par_*_queries` fan out over a shared `&self`) rather than from shared
/// mutable state. Coordinates are expected in the unit square, the
/// workspace-wide data space convention.
pub struct ShardedIndex<I: SpatialIndex + Send + Sync, R: Router = GridRouter> {
    pub(crate) router: R,
    pub(crate) shards: Vec<UpdateProcessor<DeltaOverlay<I>>>,
    /// Per-shard check frequency, echoed into the serving-directory
    /// manifest so `open` restores processors with the same cadence.
    pub(crate) f_u: usize,
    /// Root seed, echoed into the manifest so rebuild closures recreated
    /// by `open` derive the same per-shard seeds as the original build.
    pub(crate) seed: u64,
}

impl<I: SpatialIndex + Send + Sync> ShardedIndex<I, GridRouter> {
    /// Builds a grid-routed deployment (see [`ShardedIndex::build`]).
    pub fn build_grid<B, P>(
        points: Vec<Point>,
        cfg: &ShardedConfig,
        shard_builder: B,
        policy: P,
    ) -> Self
    where
        B: Fn(&ShardContext, Vec<Point>) -> I + Send + Sync + 'static,
        P: Fn(usize) -> RebuildPolicy,
    {
        Self::build(
            points,
            GridRouter::new(cfg.rows, cfg.cols),
            cfg,
            shard_builder,
            policy,
        )
    }
}

impl<I: SpatialIndex + Send + Sync> ShardedIndex<I, LearnedRouter> {
    /// Builds a deployment routed by a [`LearnedRouter`] fitted to the
    /// build points themselves (via [`LearnedRouter::fit_sampled`], a
    /// deterministic stride subsample), so shard boundaries sit at
    /// equi-mass quantiles of the actual data. See [`ShardedIndex::build`]
    /// for the builder/policy contract.
    pub fn build_learned<B, P>(
        points: Vec<Point>,
        cfg: &ShardedConfig,
        shard_builder: B,
        policy: P,
    ) -> Self
    where
        B: Fn(&ShardContext, Vec<Point>) -> I + Send + Sync + 'static,
        P: Fn(usize) -> RebuildPolicy,
    {
        let router = LearnedRouter::fit_sampled(&points, cfg.rows, cfg.cols);
        Self::build(points, router, cfg, shard_builder, policy)
    }
}

impl ShardedIndex<ZmIndex, GridRouter> {
    /// The workhorse deployment: ZM-F shards built through a shared ELSI
    /// build processor, with the threshold rebuild policy of the update
    /// experiments (`max_drift` 0.15, `max_ratio` 10.0) on every shard.
    pub fn zm(points: Vec<Point>, cfg: &ShardedConfig, elsi: &Elsi) -> Self {
        Self::build_grid(points, cfg, zm_shard_builder(elsi), zm_policy)
    }
}

impl ShardedIndex<ZmIndex, LearnedRouter> {
    /// [`ShardedIndex::zm`] behind a fitted [`LearnedRouter`] instead of
    /// the uniform grid: same shards, same rebuild policy, equi-mass
    /// boundaries.
    pub fn zm_learned(points: Vec<Point>, cfg: &ShardedConfig, elsi: &Elsi) -> Self {
        Self::build_learned(points, cfg, zm_shard_builder(elsi), zm_policy)
    }
}

/// The shared ZM-F shard builder of [`ShardedIndex::zm`] /
/// [`ShardedIndex::zm_learned`]: every shard builds through one ELSI
/// build processor.
pub(crate) fn zm_shard_builder(
    elsi: &Elsi,
) -> impl Fn(&ShardContext, Vec<Point>) -> ZmIndex + Send + Sync + 'static {
    let builder = Arc::new(elsi.builder());
    move |_ctx: &ShardContext, pts: Vec<Point>| {
        ZmIndex::build(pts, &ZmConfig::default(), builder.as_ref())
    }
}

/// The threshold rebuild policy of the update experiments, applied
/// uniformly to every shard.
pub(crate) fn zm_policy(_shard: usize) -> RebuildPolicy {
    RebuildPolicy::Threshold {
        max_drift: 0.15,
        max_ratio: 10.0,
    }
}

impl<I: SpatialIndex + Send + Sync, R: Router> ShardedIndex<I, R> {
    /// Partitions `points` by `router` ownership and builds every shard in
    /// parallel on the rayon pool.
    ///
    /// `shard_builder` builds one shard's base index from its points; it
    /// runs once per shard at build time and again on every rebuild, and
    /// must derive any randomness from its [`ShardContext::seed`] so
    /// results are bit-identical across thread counts. `policy` hands each
    /// shard its own [`RebuildPolicy`] (called serially, in shard order).
    pub fn build<B, P>(
        points: Vec<Point>,
        router: R,
        cfg: &ShardedConfig,
        shard_builder: B,
        policy: P,
    ) -> Self
    where
        B: Fn(&ShardContext, Vec<Point>) -> I + Send + Sync + 'static,
        P: Fn(usize) -> RebuildPolicy,
    {
        let n = router.num_shards();
        let mut parts: Vec<Vec<Point>> = vec![Vec::new(); n];
        for p in points {
            if let Some(part) = parts.get_mut(router.shard_of(p)) {
                part.push(p);
            }
        }
        let builder = Arc::new(shard_builder);
        let work: Vec<(usize, Vec<Point>, RebuildPolicy)> = parts
            .into_iter()
            .enumerate()
            .map(|(s, pts)| (s, pts, policy(s)))
            .collect();
        let (root_seed, f_u) = (cfg.seed, cfg.f_u);
        let router_ref = &router;
        let shards: Vec<UpdateProcessor<DeltaOverlay<I>>> = work
            .into_par_iter()
            .map(move |(s, pts, pol)| {
                let ctx = ShardContext {
                    shard: s,
                    rect: router_ref.shard_rect(s),
                    seed: shard_seed(root_seed, s),
                };
                let b = Arc::clone(&builder);
                let rebuild: RebuildFn<DeltaOverlay<I>> =
                    Box::new(move |pts| DeltaOverlay::new(b(&ctx, pts)));
                UpdateProcessor::new(pts, rebuild, pol, f_u)
            })
            .collect();
        Self {
            router,
            shards,
            f_u,
            seed: root_seed,
        }
    }

    /// The router in front of the shards.
    pub fn router(&self) -> &R {
        &self.router
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's update processor (for inspection; updates go through
    /// the routed entry points).
    pub fn shard(&self, shard: usize) -> &UpdateProcessor<DeltaOverlay<I>> {
        &self.shards[shard]
    }

    /// O(1)-per-shard load snapshot (counters only — no drift features, no
    /// locks; see [`ShardStats`]).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, proc)| ShardStats {
                shard: s,
                live_len: proc.live_len(),
                n_at_build: proc.n_at_build(),
                pending_updates: proc.pending_updates(),
                delta_len: proc.index().delta_len(),
                rebuilds: proc.rebuilds(),
            })
            .collect()
    }

    /// Total rebuilds triggered across all shards.
    pub fn rebuilds(&self) -> usize {
        self.shards.iter().map(|s| s.rebuilds()).sum()
    }

    /// Routes one insert to its owning shard; `Rebuilt` if it tripped that
    /// shard's rebuild policy.
    // lint:serving_root
    pub fn insert_routed(&mut self, p: Point) -> UpdateOutcome {
        let s = self.router.shard_of(p);
        match self.shards.get_mut(s) {
            Some(shard) => shard.insert(p),
            None => UpdateOutcome::Applied,
        }
    }

    /// Routes one delete to its owning shard.
    // lint:serving_root
    pub fn delete_routed(&mut self, p: Point) -> UpdateOutcome {
        let s = self.router.shard_of(p);
        match self.shards.get_mut(s) {
            Some(shard) => shard.delete(p),
            None => UpdateOutcome::Applied,
        }
    }

    /// Applies a batch of updates, fanning the per-shard sub-batches out
    /// on the rayon pool (shard-local arrival order is preserved, so the
    /// outcome is independent of the thread count). Each shard takes the
    /// bulk ingestion path (`UpdateProcessor::apply_batch`): one ordered
    /// splice into its delta maps and one rebuild-policy consultation per
    /// sub-batch, instead of per-update checks. Returns the number of
    /// shard rebuilds the batch triggered.
    // lint:serving_root
    pub fn par_apply_updates(&mut self, updates: &[Update]) -> usize {
        let before = self.rebuilds();
        let mut per: Vec<Vec<Update>> = vec![Vec::new(); self.shards.len()];
        for &u in updates {
            if let Some(sub) = per.get_mut(self.router.shard_of(u.point())) {
                sub.push(u);
            }
        }
        // The vendored rayon has no `par_iter_mut`: move the shards out,
        // run each shard+batch pair to completion, and collect them back
        // (order-preserving map keeps shard ids stable).
        let shards = std::mem::take(&mut self.shards);
        self.shards = shards
            .into_iter()
            .zip(per)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(mut shard, batch)| {
                shard.apply_batch(&batch);
                shard
            })
            .collect();
        self.rebuilds() - before
    }

    /// Exact cross-shard kNN merge; see `DESIGN.md` §9 for the proof
    /// sketch. Results come back in canonical order
    /// ([`canonical_knn_cmp`]), so equal result sets are bit-identical.
    ///
    /// Phase 1 visits shards in ascending MINDIST order, pushing each
    /// shard's local top-k distances through a size-k max-heap and
    /// stopping as soon as the next shard's rectangle cannot beat the
    /// current k-th distance — that yields a radius `r` with at least `k`
    /// points inside (when `k` points exist at all). Phase 2 gathers the
    /// closed ball of radius `r` from every non-prunable shard via window
    /// queries, keeps ties, sorts canonically and truncates. Exactness
    /// inherits from the shard index's own query exactness (approximate
    /// window queries — RSMI, LISA — give approximate merges, same as the
    /// monolith).
    fn knn_merged(&self, q: Point, k: usize) -> Vec<Point> {
        let mut out = Vec::new();
        self.knn_merged_into(q, k, &mut ScanScratch::new(), &mut out);
        out
    }

    /// [`ShardedIndex::knn_merged`] with caller-provided scratch: per-shard
    /// results stream through each shard's own scan kernels, the final
    /// candidate set runs through the scratch's bounded best-k heap, and the
    /// staging buffer is pooled across queries — steady state allocates only
    /// the node frontier.
    fn knn_merged_into(&self, q: Point, k: usize, scratch: &mut ScanScratch, out: &mut Vec<Point>) {
        out.clear();
        if k == 0 || self.shards.is_empty() {
            return;
        }
        let mut order: Vec<(f64, usize)> = (0..self.shards.len())
            .map(|s| (self.router.shard_rect(s).min_dist2(&q), s))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        let mut buf = scratch.stage_take();
        let mut heap: BinaryHeap<HeapDist> = BinaryHeap::new();
        for &(min_d2, s) in &order {
            if heap.len() == k && heap.peek().is_some_and(|kth| min_d2 > kth.0) {
                break;
            }
            let Some(shard) = self.shards.get(s) else {
                continue;
            };
            shard.knn_query_into(q, k, scratch, &mut buf);
            for p in &buf {
                let d2 = q.dist2(p);
                if heap.len() < k {
                    heap.push(HeapDist(d2));
                } else if heap.peek().is_some_and(|kth| d2 < kth.0) {
                    heap.pop();
                    heap.push(HeapDist(d2));
                }
            }
        }
        // r² = the k-th smallest candidate distance; ∞ when fewer than k
        // points exist in total (then the "ball" is the whole plane and
        // every shard is gathered).
        let r2 = match heap.peek() {
            Some(kth) if heap.len() == k => kth.0,
            _ => f64::INFINITY,
        };
        let r = r2.sqrt();
        let ball = Rect::new(q.x - r, q.y - r, q.x + r, q.y + r);
        // Gather the closed ball into `out`, then distil the k best through
        // the bounded heap — same result as the canonical sort + truncate
        // (the heap admits and orders with the same comparator).
        for &(min_d2, s) in &order {
            if min_d2 > r2 {
                break;
            }
            let Some(shard) = self.shards.get(s) else {
                continue;
            };
            shard.window_query_into(&ball, scratch, &mut buf);
            out.extend(buf.iter().filter(|p| q.dist2(p) <= r2));
        }
        scratch.stage_put(buf);
        let best = scratch.heap_for(k);
        for p in out.iter() {
            best.offer(KnnEntry {
                dist2: q.dist2(p),
                id: p.id,
                x: p.x,
                y: p.y,
            });
        }
        let ranked = best.finish();
        out.clear();
        out.extend(ranked.iter().map(|e| e.point()));
    }
}

impl<I: SpatialIndex + Send + Sync, R: Router> SpatialIndex for ShardedIndex<I, R> {
    /// Sum of per-shard live sizes — O(shards), each read O(1).
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.live_len()).sum()
    }

    /// Routed to the single owning shard in O(1).
    // lint:serving_root
    fn point_query(&self, q: Point) -> Option<Point> {
        self.shards.get(self.router.shard_of(q))?.point_query(q)
    }

    /// Gathered from the overlapping shards, in canonical
    /// ([`canonical_point_key`]) order — equal result sets are
    /// bit-identical regardless of the shard layout.
    // lint:serving_root
    fn window_query(&self, w: &Rect) -> Vec<Point> {
        let mut out = Vec::new();
        self.window_query_into(w, &mut ScanScratch::new(), &mut out);
        out
    }

    fn window_query_into(&self, w: &Rect, scratch: &mut ScanScratch, out: &mut Vec<Point>) {
        out.clear();
        let mut buf = scratch.stage_take();
        for s in self.router.shards_for_window(w) {
            let Some(shard) = self.shards.get(s) else {
                continue;
            };
            shard.window_query_into(w, scratch, &mut buf);
            out.extend_from_slice(&buf);
        }
        scratch.stage_put(buf);
        out.sort_by_key(canonical_point_key);
    }

    // lint:serving_root
    fn knn_query(&self, q: Point, k: usize) -> Vec<Point> {
        self.knn_merged(q, k)
    }

    fn knn_query_into(&self, q: Point, k: usize, scratch: &mut ScanScratch, out: &mut Vec<Point>) {
        self.knn_merged_into(q, k, scratch, out);
    }

    fn insert(&mut self, p: Point) {
        self.insert_routed(p);
    }

    fn delete(&mut self, p: Point) -> bool {
        let s = self.router.shard_of(p);
        match self.shards.get_mut(s) {
            Some(shard) => SpatialIndex::delete(shard, p),
            None => false,
        }
    }

    fn name(&self) -> &'static str {
        "Sharded"
    }

    /// One routing step above the deepest shard.
    fn depth(&self) -> usize {
        1 + self.shards.iter().map(|s| s.depth()).max().unwrap_or(0)
    }

    // lint:serving_root
    fn par_point_queries(&self, queries: &[Point]) -> Vec<Option<Point>> {
        par_point_queries_of(self, queries)
    }

    // lint:serving_root
    fn par_window_queries(&self, windows: &[Rect]) -> Vec<Vec<Point>> {
        par_window_queries_of(self, windows)
    }

    // lint:serving_root
    fn par_knn_queries(&self, queries: &[Point], k: usize) -> Vec<Vec<Point>> {
        par_knn_queries_of(self, queries, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsi_data::gen::uniform;
    use elsi_indices::{GridConfig, GridIndex};

    fn grid_sharded(points: Vec<Point>, rows: usize, cols: usize) -> ShardedIndex<GridIndex> {
        ShardedIndex::build_grid(
            points,
            &ShardedConfig::grid(rows, cols),
            |_ctx, pts| GridIndex::build(pts, &GridConfig { block_size: 16 }),
            |_s| RebuildPolicy::Never,
        )
    }

    #[test]
    fn sharded_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedIndex<GridIndex>>();
    }

    #[test]
    fn len_and_point_queries_route_correctly() {
        let pts = uniform(500, 7);
        let sharded = grid_sharded(pts.clone(), 2, 3);
        assert_eq!(sharded.len(), 500);
        assert_eq!(sharded.num_shards(), 6);
        for p in pts.iter().step_by(17) {
            assert_eq!(sharded.point_query(*p), Some(*p));
        }
    }

    #[test]
    fn knn_matches_brute_force_on_small_sets() {
        let pts = uniform(300, 11);
        let sharded = grid_sharded(pts.clone(), 3, 3);
        for (i, q) in [
            Point::at(0.5, 0.5),
            Point::at(0.01, 0.99),
            Point::at(1.0, 1.0),
        ]
        .into_iter()
        .enumerate()
        {
            let k = 1 + i * 7;
            let mut want = pts.clone();
            want.sort_by(|a, b| canonical_knn_cmp(q, a, b));
            want.truncate(k);
            assert_eq!(sharded.knn_query(q, k), want, "q={q:?} k={k}");
        }
    }

    #[test]
    fn knn_with_fewer_points_than_k_returns_everything() {
        let pts = uniform(5, 3);
        let sharded = grid_sharded(pts.clone(), 2, 2);
        let got = sharded.knn_query(Point::at(0.2, 0.8), 50);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn routed_updates_land_in_the_owning_shard() {
        let mut sharded = grid_sharded(uniform(200, 5), 2, 2);
        let p = Point::new(9_000_001, 0.9, 0.9); // shard 3
        sharded.insert_routed(p);
        assert_eq!(sharded.shard_stats()[3].pending_updates, 1);
        assert_eq!(sharded.point_query(p), Some(p));
        assert_eq!(sharded.delete_routed(p), UpdateOutcome::Applied);
        assert_eq!(sharded.point_query(p), None);
        assert_eq!(sharded.len(), 200);
    }

    #[test]
    fn batched_updates_match_sequential_routing() {
        let base = uniform(400, 9);
        let mut batched = grid_sharded(base.clone(), 2, 2);
        let mut sequential = grid_sharded(base.clone(), 2, 2);
        let mut updates: Vec<Update> = uniform(120, 10)
            .into_iter()
            .enumerate()
            .map(|(i, mut p)| {
                p.id = 1_000_000 + i as u64;
                Update::Insert(p)
            })
            .collect();
        updates.extend(base.iter().step_by(11).map(|p| Update::Delete(*p)));
        batched.par_apply_updates(&updates);
        for &u in &updates {
            match u {
                Update::Insert(p) => {
                    sequential.insert_routed(p);
                }
                Update::Delete(p) => {
                    sequential.delete_routed(p);
                }
            }
        }
        assert_eq!(batched.len(), sequential.len());
        assert_eq!(
            batched.window_query(&Rect::unit()),
            sequential.window_query(&Rect::unit())
        );
    }

    #[test]
    fn batched_queries_match_their_sequential_counterparts() {
        let pts = uniform(300, 13);
        let sharded = grid_sharded(pts, 2, 2);
        let queries: Vec<Point> = uniform(40, 14);
        let windows: Vec<Rect> = queries
            .iter()
            .map(|q| Rect::window_around(*q, 0.01))
            .collect();
        assert_eq!(
            sharded.par_point_queries(&queries),
            queries
                .iter()
                .map(|&q| sharded.point_query(q))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            sharded.par_window_queries(&windows),
            windows
                .iter()
                .map(|w| sharded.window_query(w))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            sharded.par_knn_queries(&queries, 5),
            queries
                .iter()
                .map(|&q| sharded.knn_query(q, 5))
                .collect::<Vec<_>>()
        );
    }
}
