//! Durable serving directories: crash recovery for [`ShardedIndex`].
//!
//! One deployment persists as one directory (`DESIGN.md` §14):
//!
//! ```text
//! deploy/
//!   MANIFEST.json        — shape, seeds, and the current generation
//!   router.g3.snap       — the fitted router state (one-section snapshot)
//!   shard-0000.g3.snap   — one snapshot per shard (core persist format)
//!   shard-0000.g3.wal    — that shard's journal of post-snapshot updates
//!   …
//! ```
//!
//! Every file name carries a **generation** number. [`ShardedIndex::save`]
//! writes the next generation's files first, then atomically replaces the
//! manifest, then prunes the previous generation — so a crash at any point
//! leaves either the old complete generation or the new one, never a
//! torn mix. The manifest is the commit point, exactly like the snapshot
//! writer's temp-file + rename.
//!
//! `save` also *rotates journals*: each shard's old WAL is absorbed by its
//! new snapshot, and subsequent updates journal into a fresh WAL of the
//! new generation. [`ShardedIndex::open`] reverses the whole arrangement —
//! manifest → router → parallel per-shard [`elsi::recover`] (snapshot +
//! WAL replay) — and re-attaches the journals, so a reopened deployment
//! keeps journaling from where it left off.
//!
//! Router cuts are f64 bit patterns and therefore live in the binary
//! router snapshot, not in JSON (see `elsi_store::json`); the manifest
//! only echoes the router *kind* so a mismatched open fails before any
//! shard work starts.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

use elsi::{recover, DeltaOverlay, Elsi, RebuildFn, RebuildPolicy, UpdateProcessor};
use elsi_indices::{SpatialIndex, ZmIndex, ZmStateCodec};
use elsi_spatial::Point;
use elsi_store::{
    ByteReader, ByteWriter, IndexCodec, Json, Snapshot, SnapshotWriter, StoreError, WalWriter,
};
use rayon::prelude::*;

use crate::router::{GridRouter, LearnedRouter, Router};
use crate::sharded::{shard_seed, zm_policy, zm_shard_builder, ShardContext, ShardedIndex};

/// Re-exported so serving callers can assemble the workhorse codec
/// without importing three crates.
pub use elsi::OverlayCodec;

/// The manifest file inside a serving directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// Manifest format this build reads and writes.
pub const MANIFEST_FORMAT: u32 = 1;

/// Section tag of the router state inside `router.g<N>.snap`.
pub const SEC_ROUTER: u32 = u32::from_le_bytes(*b"ROUT");

/// Binary tag for [`RouterState::Grid`].
const ROUTER_GRID: u8 = 0;
/// Binary tag for [`RouterState::Learned`].
const ROUTER_LEARNED: u8 = 1;

/// The persistable state of a router — everything needed to reassemble
/// routing *without refitting*, so recovery skips the CDF fit entirely.
#[derive(Debug, Clone, PartialEq)]
pub enum RouterState {
    /// A uniform [`GridRouter`]: shape only.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// A fitted [`LearnedRouter`]: shape plus the exact cut positions
    /// (f64 bit patterns — routing after recovery must be bit-identical
    /// to routing before the save, or points change owners).
    Learned {
        /// Partition rows.
        rows: usize,
        /// Partition columns.
        cols: usize,
        /// `cols + 1` strictly increasing x cuts anchored at `0.0`/`1.0`.
        x_cuts: Vec<f64>,
        /// Per column, `rows + 1` such y cuts.
        y_cuts: Vec<Vec<f64>>,
    },
}

impl RouterState {
    /// The manifest name of this router kind.
    pub fn kind(&self) -> &'static str {
        match self {
            RouterState::Grid { .. } => "grid",
            RouterState::Learned { .. } => "learned",
        }
    }
}

/// Routers a serving directory can persist and restore.
pub trait PersistRouter: Router {
    /// This router's persistable state.
    fn state(&self) -> RouterState;

    /// Reassembles a router from persisted state; `None` when the state
    /// describes a different router kind or violates its invariants.
    fn from_state(state: &RouterState) -> Option<Self>
    where
        Self: Sized;
}

impl PersistRouter for GridRouter {
    fn state(&self) -> RouterState {
        RouterState::Grid {
            rows: self.rows(),
            cols: self.cols(),
        }
    }

    fn from_state(state: &RouterState) -> Option<Self> {
        match state {
            RouterState::Grid { rows, cols } if *rows >= 1 && *cols >= 1 => {
                Some(GridRouter::new(*rows, *cols))
            }
            _ => None,
        }
    }
}

impl PersistRouter for LearnedRouter {
    fn state(&self) -> RouterState {
        RouterState::Learned {
            rows: self.rows(),
            cols: self.cols(),
            x_cuts: self.x_cuts().to_vec(),
            y_cuts: (0..self.cols())
                .map(|c| self.y_cuts(c).unwrap_or(&[]).to_vec())
                .collect(),
        }
    }

    fn from_state(state: &RouterState) -> Option<Self> {
        match state {
            RouterState::Learned {
                rows,
                cols,
                x_cuts,
                y_cuts,
            } => LearnedRouter::from_cuts(*rows, *cols, x_cuts.clone(), y_cuts.clone()),
            _ => None,
        }
    }
}

/// Encodes a router state for the `SEC_ROUTER` snapshot section.
pub fn encode_router_state(state: &RouterState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match state {
        RouterState::Grid { rows, cols } => {
            w.put_u8(ROUTER_GRID);
            w.put_usize(*rows);
            w.put_usize(*cols);
        }
        RouterState::Learned {
            rows,
            cols,
            x_cuts,
            y_cuts,
        } => {
            w.put_u8(ROUTER_LEARNED);
            w.put_usize(*rows);
            w.put_usize(*cols);
            w.put_f64s(x_cuts);
            w.put_usize(y_cuts.len());
            for col in y_cuts {
                w.put_f64s(col);
            }
        }
    }
    w.into_vec()
}

/// Decodes a `SEC_ROUTER` payload. Unknown kind tags are
/// [`StoreError::Unsupported`] (a newer build's router, not damage).
pub fn decode_router_state(bytes: &[u8]) -> Result<RouterState, StoreError> {
    let mut r = ByteReader::new(bytes, "router state");
    let state = match r.get_u8()? {
        ROUTER_GRID => RouterState::Grid {
            rows: r.get_usize()?,
            cols: r.get_usize()?,
        },
        ROUTER_LEARNED => {
            let rows = r.get_usize()?;
            let cols = r.get_usize()?;
            let x_cuts = r.get_f64s()?;
            // Each column carries at least its own length prefix.
            let n = r.get_len(8)?;
            let mut y_cuts = Vec::with_capacity(n);
            for _ in 0..n {
                y_cuts.push(r.get_f64s()?);
            }
            RouterState::Learned {
                rows,
                cols,
                x_cuts,
                y_cuts,
            }
        }
        other => {
            return Err(StoreError::Unsupported {
                what: format!("router kind tag {other}"),
            })
        }
    };
    r.expect_end()?;
    Ok(state)
}

/// The parsed `MANIFEST.json` of a serving directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Manifest format version ([`MANIFEST_FORMAT`]).
    pub format: u32,
    /// Current committed generation; all live file names carry it.
    pub generation: u64,
    /// Number of shards (must equal the restored router's shard count).
    pub shards: usize,
    /// Per-shard update-processor check frequency.
    pub f_u: usize,
    /// Root seed; shard `s` rebuilds with `shard_seed(seed, s)`.
    pub seed: u64,
    /// Router kind ("grid" / "learned") — a pre-flight check only; the
    /// authoritative state lives in the binary router snapshot.
    pub router_kind: String,
}

fn m_field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, StoreError> {
    v.get(key).ok_or_else(|| StoreError::Manifest {
        detail: format!("missing field `{key}`"),
    })
}

fn m_usize(v: &Json, key: &str) -> Result<usize, StoreError> {
    m_field(v, key)?
        .as_usize()
        .ok_or_else(|| StoreError::Manifest {
            detail: format!("field `{key}` is not a non-negative integer"),
        })
}

fn m_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, StoreError> {
    m_field(v, key)?
        .as_str()
        .ok_or_else(|| StoreError::Manifest {
            detail: format!("field `{key}` is not a string"),
        })
}

impl Manifest {
    /// The manifest as a JSON value (the committed, diff-friendly form).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("format", Json::int(self.format as usize)),
            ("generation", Json::int(self.generation as usize)),
            ("shards", Json::int(self.shards)),
            ("f_u", Json::int(self.f_u)),
            // u64 seeds exceed JSON's 2⁵³ exact-integer range: travel as
            // a decimal string.
            ("seed", Json::str(self.seed.to_string())),
            ("router", Json::str(self.router_kind.clone())),
        ])
    }

    /// Parses a manifest, pinning every malformed field to
    /// [`StoreError::Manifest`].
    pub fn from_json(v: &Json) -> Result<Self, StoreError> {
        let format = u32::try_from(m_usize(v, "format")?).map_err(|_| StoreError::Manifest {
            detail: "field `format` is out of range".to_string(),
        })?;
        let seed = m_str(v, "seed")?
            .parse::<u64>()
            .map_err(|_| StoreError::Manifest {
                detail: "field `seed` is not a u64 decimal string".to_string(),
            })?;
        Ok(Manifest {
            format,
            generation: m_usize(v, "generation")? as u64,
            shards: m_usize(v, "shards")?,
            f_u: m_usize(v, "f_u")?,
            seed,
            router_kind: m_str(v, "router")?.to_string(),
        })
    }
}

/// Reads and parses `dir/MANIFEST.json`.
pub fn read_manifest(dir: &Path) -> Result<Manifest, StoreError> {
    let path = dir.join(MANIFEST_NAME);
    let text = fs::read_to_string(&path).map_err(|e| StoreError::io("read", &path, e))?;
    let json = Json::parse(&text).map_err(|e| StoreError::Manifest {
        detail: e.to_string(),
    })?;
    Manifest::from_json(&json)
}

/// Atomically replaces `dir/MANIFEST.json` — the generation commit point.
fn write_manifest(dir: &Path, m: &Manifest) -> Result<(), StoreError> {
    let tmp = dir.join("MANIFEST.json.tmp");
    let path = dir.join(MANIFEST_NAME);
    let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io("create", &tmp, e))?;
    f.write_all(m.to_json().write_pretty().as_bytes())
        .map_err(|e| StoreError::io("write", &tmp, e))?;
    f.sync_all().map_err(|e| StoreError::io("sync", &tmp, e))?;
    drop(f);
    fs::rename(&tmp, &path).map_err(|e| StoreError::io("rename", &path, e))?;
    Ok(())
}

fn router_file(generation: u64) -> String {
    format!("router.g{generation}.snap")
}

fn shard_snap_file(generation: u64, shard: usize) -> String {
    format!("shard-{shard:04}.g{generation}.snap")
}

fn shard_wal_file(generation: u64, shard: usize) -> String {
    format!("shard-{shard:04}.g{generation}.wal")
}

/// Generation number of a serving-directory file name, parsed from its
/// `.g<N>.` segment; `None` for the manifest and foreign files.
fn file_generation(name: &str) -> Option<u64> {
    let stem = name
        .strip_suffix(".snap")
        .or_else(|| name.strip_suffix(".wal"))?;
    let (_, generation) = stem.rsplit_once(".g")?;
    generation.parse().ok()
}

/// The generation the next save should write. Normally manifest + 1; with
/// no readable manifest, steps past any stranded files so a save after an
/// interrupted one never reuses their numbers.
fn next_generation(dir: &Path) -> u64 {
    if let Ok(m) = read_manifest(dir) {
        return m.generation + 1;
    }
    let mut max = 0;
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Some(g) = file_generation(&entry.file_name().to_string_lossy()) {
                max = max.max(g);
            }
        }
    }
    max + 1
}

/// Best-effort removal of every generation-stamped file except `keep`'s.
/// Failures are ignored: stale files cost disk, never correctness — the
/// manifest alone decides which generation is live.
fn prune_stale(dir: &Path, keep: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if file_generation(&entry.file_name().to_string_lossy()).is_some_and(|g| g != keep) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

impl<I, R> ShardedIndex<I, R>
where
    I: SpatialIndex + Send + Sync,
    R: PersistRouter,
{
    /// Persists the deployment into `dir` as the next generation and
    /// rotates every shard's journal: old WALs are absorbed by the new
    /// snapshots, and updates applied after this call journal into fresh
    /// WALs of the new generation. Returns the committed generation.
    ///
    /// Shard snapshots are written in parallel on the rayon pool; the
    /// manifest is replaced atomically only after every file of the new
    /// generation is on disk, so a crash mid-save leaves the previous
    /// generation fully intact.
    // lint:serving_root
    pub fn save<C>(&mut self, dir: &Path, codec: &C) -> Result<u64, StoreError>
    where
        C: IndexCodec<DeltaOverlay<I>> + Sync,
    {
        fs::create_dir_all(dir).map_err(|e| StoreError::io("create_dir", dir, e))?;
        let generation = next_generation(dir);

        let mut router_snap = SnapshotWriter::new();
        router_snap.add_section(SEC_ROUTER, encode_router_state(&self.router.state()));
        router_snap.write_file(&dir.join(router_file(generation)))?;

        // The vendored rayon has no `par_iter_mut`: move the shards out,
        // snapshot + re-journal each one, and collect them back in order.
        let shards = std::mem::take(&mut self.shards);
        type Saved<I> = Vec<(UpdateProcessor<DeltaOverlay<I>>, Result<(), StoreError>)>;
        let saved: Saved<I> = shards
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(s, mut shard)| {
                shard.detach_wal();
                let res = (|| {
                    shard.save_snapshot(&dir.join(shard_snap_file(generation, s)), codec)?;
                    let wal = WalWriter::create(&dir.join(shard_wal_file(generation, s)))?;
                    shard.attach_wal(wal);
                    Ok(())
                })();
                (shard, res)
            })
            .collect();
        // Shards go back in place before any error propagates: a failed
        // save must leave the deployment serving (possibly un-journaled —
        // the same degrade-over-poison rule as `UpdateProcessor`'s WAL).
        let mut first_err = None;
        self.shards = saved
            .into_iter()
            .map(|(shard, res)| {
                if let Err(e) = res {
                    first_err.get_or_insert(e);
                }
                shard
            })
            .collect();
        if let Some(e) = first_err {
            return Err(e);
        }

        write_manifest(
            dir,
            &Manifest {
                format: MANIFEST_FORMAT,
                generation,
                shards: self.shards.len(),
                f_u: self.f_u,
                seed: self.seed,
                router_kind: self.router.state().kind().to_string(),
            },
        )?;
        prune_stale(dir, generation);
        Ok(generation)
    }

    /// Restores a deployment from a serving directory: manifest → router
    /// state (no refitting) → every shard recovered in parallel from its
    /// snapshot plus journaled WAL tail ([`elsi::recover`]), with the
    /// journals re-attached so the reopened deployment keeps journaling.
    ///
    /// `shard_builder` and `policy` follow the [`ShardedIndex::build`]
    /// contract — they are only *invoked* for shards whose snapshot
    /// carries no encoded index blob (the deterministic rebuild path) and
    /// on later policy-triggered rebuilds, with the same per-shard seeds
    /// as the original build (the manifest records the root seed).
    // lint:serving_root
    pub fn open<B, P, C>(
        dir: &Path,
        shard_builder: B,
        policy: P,
        codec: &C,
    ) -> Result<Self, StoreError>
    where
        B: Fn(&ShardContext, Vec<Point>) -> I + Send + Sync + 'static,
        P: Fn(usize) -> RebuildPolicy,
        C: IndexCodec<DeltaOverlay<I>> + Sync,
    {
        let manifest = read_manifest(dir)?;
        if manifest.format != MANIFEST_FORMAT {
            return Err(StoreError::BadVersion {
                found: manifest.format,
                expected: MANIFEST_FORMAT,
            });
        }
        let snap = Snapshot::read_file(&dir.join(router_file(manifest.generation)))?;
        let state =
            decode_router_state(snap.section(SEC_ROUTER).ok_or_else(|| {
                StoreError::corrupt("router snapshot", "missing router section")
            })?)?;
        if manifest.router_kind != state.kind() {
            return Err(StoreError::Manifest {
                detail: format!(
                    "manifest says router `{}` but the router snapshot holds `{}`",
                    manifest.router_kind,
                    state.kind()
                ),
            });
        }
        let router = R::from_state(&state).ok_or_else(|| StoreError::Manifest {
            detail: format!(
                "directory persists a `{}` router, which this deployment's router type cannot restore",
                state.kind()
            ),
        })?;
        if router.num_shards() != manifest.shards {
            return Err(StoreError::Manifest {
                detail: format!(
                    "router owns {} shards but the manifest records {}",
                    router.num_shards(),
                    manifest.shards
                ),
            });
        }

        let builder = Arc::new(shard_builder);
        // Policies are drawn serially in shard order, as in `build`.
        let work: Vec<(usize, RebuildPolicy)> =
            (0..manifest.shards).map(|s| (s, policy(s))).collect();
        let (root_seed, generation) = (manifest.seed, manifest.generation);
        let router_ref = &router;
        let recovered: Vec<Result<UpdateProcessor<DeltaOverlay<I>>, StoreError>> = work
            .into_par_iter()
            .map(move |(s, pol)| {
                let ctx = ShardContext {
                    shard: s,
                    rect: router_ref.shard_rect(s),
                    seed: shard_seed(root_seed, s),
                };
                let b = Arc::clone(&builder);
                let rebuild: RebuildFn<DeltaOverlay<I>> =
                    Box::new(move |pts| DeltaOverlay::new(b(&ctx, pts)));
                recover(
                    &dir.join(shard_snap_file(generation, s)),
                    &dir.join(shard_wal_file(generation, s)),
                    rebuild,
                    pol,
                    codec,
                )
            })
            .collect();
        let mut shards = Vec::with_capacity(recovered.len());
        for res in recovered {
            shards.push(res?);
        }
        Ok(Self {
            router,
            shards,
            f_u: manifest.f_u,
            seed: manifest.seed,
        })
    }
}

/// The codec for ZM-F shard snapshots: the overlay's delta state wraps
/// [`ZmStateCodec`]'s exact base-index blob, so recovery restores shards
/// bit-for-bit with no model training.
pub fn zm_codec() -> OverlayCodec<ZmStateCodec> {
    OverlayCodec::new(ZmStateCodec)
}

impl ShardedIndex<ZmIndex, GridRouter> {
    /// Reopens a [`ShardedIndex::zm`] deployment saved with [`zm_codec`].
    /// `elsi` only builds on later policy-triggered rebuilds — recovery
    /// itself decodes the persisted shard state.
    // lint:serving_root
    pub fn open_zm(dir: &Path, elsi: &Elsi) -> Result<Self, StoreError> {
        Self::open(dir, zm_shard_builder(elsi), zm_policy, &zm_codec())
    }
}

impl ShardedIndex<ZmIndex, LearnedRouter> {
    /// Reopens a [`ShardedIndex::zm_learned`] deployment saved with
    /// [`zm_codec`]; the learned cuts come back exactly, with no refit.
    // lint:serving_root
    pub fn open_zm_learned(dir: &Path, elsi: &Elsi) -> Result<Self, StoreError> {
        Self::open(dir, zm_shard_builder(elsi), zm_policy, &zm_codec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedConfig;
    use elsi::{ElsiConfig, Update};
    use elsi_indices::{GridConfig, GridIndex};
    use elsi_spatial::Rect;
    use elsi_store::NoCodec;
    use std::path::PathBuf;

    fn dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("elsi_serve_persist_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    /// Deterministic unit-square points via golden-ratio sequences.
    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.618_033_988_749_894_9).fract();
                let y = (i as f64 * 0.754_877_666_246_693).fract();
                Point::new(i as u64, x, y)
            })
            .collect()
    }

    fn grid_builder() -> impl Fn(&ShardContext, Vec<Point>) -> GridIndex + Send + Sync + 'static {
        |_ctx: &ShardContext, pts: Vec<Point>| GridIndex::build(pts, &GridConfig { block_size: 16 })
    }

    fn grid_deployment(points: Vec<Point>) -> ShardedIndex<GridIndex, GridRouter> {
        ShardedIndex::build_grid(points, &ShardedConfig::grid(2, 2), grid_builder(), |_s| {
            RebuildPolicy::Never
        })
    }

    #[test]
    fn grid_deployment_round_trips_by_rebuild() {
        let d = dir("grid_rt");
        let codec = OverlayCodec::new(NoCodec);
        let mut idx = grid_deployment(pts(600));
        for p in pts(40) {
            idx.insert_routed(Point::new(10_000 + p.id, p.y, p.x));
        }
        assert_eq!(idx.save(&d, &codec).unwrap(), 1);
        assert!(
            idx.shard(0).wal_attached(),
            "save must leave shards journaling"
        );

        let re = ShardedIndex::<GridIndex, GridRouter>::open(
            &d,
            grid_builder(),
            |_s| RebuildPolicy::Never,
            &codec,
        )
        .unwrap();
        assert_eq!(re.len(), idx.len());
        assert_eq!(re.num_shards(), idx.num_shards());
        // Canonical result order makes equal sets bit-identical even
        // though the rebuild path folds the delta into a fresh base.
        let w = Rect::new(0.1, 0.1, 0.6, 0.45);
        assert_eq!(re.window_query(&w), idx.window_query(&w));
        let q = Point::at(0.3, 0.7);
        assert_eq!(re.knn_query(q, 15), idx.knn_query(q, 15));
    }

    #[test]
    fn zm_deployment_round_trips_exactly_without_retraining() {
        let d = dir("zm_rt");
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let mut idx = ShardedIndex::zm(pts(800), &ShardedConfig::grid(2, 2), &elsi);
        for p in pts(60) {
            idx.insert_routed(Point::new(20_000 + p.id, p.y, p.x));
        }
        idx.save(&d, &zm_codec()).unwrap();

        let re = ShardedIndex::open_zm(&d, &elsi).unwrap();
        // The encoded-index fast path restores exact state: the stats
        // (including delta sizes) and raw query results all match.
        assert_eq!(re.shard_stats(), idx.shard_stats());
        let w = Rect::new(0.0, 0.2, 0.7, 0.9);
        assert_eq!(re.window_query(&w), idx.window_query(&w));
        let q = Point::at(0.4, 0.4);
        assert_eq!(re.knn_query(q, 12), idx.knn_query(q, 12));
    }

    #[test]
    fn learned_router_cuts_survive_the_round_trip() {
        let d = dir("learned_rt");
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let mut idx = ShardedIndex::zm_learned(pts(2_000), &ShardedConfig::grid(2, 3), &elsi);
        idx.save(&d, &zm_codec()).unwrap();
        let re = ShardedIndex::open_zm_learned(&d, &elsi).unwrap();
        // PartialEq over the cut vectors: bit-exact, no refit drift.
        assert_eq!(re.router(), idx.router());
        let w = Rect::new(0.25, 0.0, 0.8, 0.55);
        assert_eq!(re.window_query(&w), idx.window_query(&w));
    }

    #[test]
    fn saves_rotate_generations_and_prune_stale_files() {
        let d = dir("gens");
        let codec = OverlayCodec::new(NoCodec);
        let mut idx = grid_deployment(pts(300));
        assert_eq!(idx.save(&d, &codec).unwrap(), 1);
        assert_eq!(idx.save(&d, &codec).unwrap(), 2);
        assert_eq!(read_manifest(&d).unwrap().generation, 2);
        let names: Vec<String> = fs::read_dir(&d)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names
                .iter()
                .all(|n| file_generation(n).is_none_or(|g| g == 2)),
            "stale generation files left behind: {names:?}"
        );
        assert!(names.contains(&MANIFEST_NAME.to_string()));
        // The rotated directory still opens.
        let re = ShardedIndex::<GridIndex, GridRouter>::open(
            &d,
            grid_builder(),
            |_s| RebuildPolicy::Never,
            &codec,
        )
        .unwrap();
        assert_eq!(re.len(), idx.len());
    }

    #[test]
    fn updates_after_save_journal_and_recover() {
        let d = dir("wal_tail");
        let codec = OverlayCodec::new(NoCodec);
        let mut idx = grid_deployment(pts(400));
        idx.save(&d, &codec).unwrap();
        // These land in the fresh per-shard WALs `save` attached.
        for p in pts(25) {
            idx.insert_routed(Point::new(30_000 + p.id, p.x, p.y));
        }
        let batch: Vec<Update> = pts(10)
            .iter()
            .map(|p| Update::Insert(Point::new(40_000 + p.id, p.y, p.x)))
            .collect();
        idx.par_apply_updates(&batch);
        let expect_len = idx.len();
        let w = Rect::new(0.0, 0.0, 1.0, 1.0);
        let expect = idx.window_query(&w);
        drop(idx); // "crash": nothing saved since the journaled tail

        let re = ShardedIndex::<GridIndex, GridRouter>::open(
            &d,
            grid_builder(),
            |_s| RebuildPolicy::Never,
            &codec,
        )
        .unwrap();
        assert_eq!(re.len(), expect_len);
        assert_eq!(re.window_query(&w), expect);
        assert!(re.shard(0).wal_attached(), "open must re-attach journals");
    }

    #[test]
    fn opening_with_the_wrong_router_type_is_a_manifest_error() {
        let d = dir("wrong_router");
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let mut idx = ShardedIndex::zm(pts(300), &ShardedConfig::default(), &elsi);
        idx.save(&d, &zm_codec()).unwrap();
        let err = match ShardedIndex::open_zm_learned(&d, &elsi) {
            Err(e) => e,
            Ok(_) => panic!("opening a grid directory as learned must fail"),
        };
        assert!(matches!(err, StoreError::Manifest { .. }), "{err}");
    }

    #[test]
    fn router_state_codec_round_trips_and_rejects_damage() {
        let grid = RouterState::Grid { rows: 3, cols: 5 };
        assert_eq!(
            decode_router_state(&encode_router_state(&grid)).unwrap(),
            grid
        );

        let fitted = LearnedRouter::fit(&pts(4_000), 3, 2);
        let decoded = decode_router_state(&encode_router_state(&fitted.state())).unwrap();
        assert_eq!(LearnedRouter::from_state(&decoded).unwrap(), fitted);

        assert!(matches!(
            decode_router_state(&[9]),
            Err(StoreError::Unsupported { .. })
        ));
        let bytes = encode_router_state(&fitted.state());
        assert!(decode_router_state(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn manifest_json_round_trips_and_pins_field_errors() {
        let m = Manifest {
            format: MANIFEST_FORMAT,
            generation: 7,
            shards: 6,
            f_u: 64,
            seed: u64::MAX, // exceeds JSON's exact-integer range on purpose
            router_kind: "learned".to_string(),
        };
        let parsed = Json::parse(&m.to_json().write_pretty()).unwrap();
        assert_eq!(Manifest::from_json(&parsed).unwrap(), m);

        let missing = Json::obj(vec![("format", Json::int(1))]);
        assert!(matches!(
            Manifest::from_json(&missing),
            Err(StoreError::Manifest { .. })
        ));
        let bad_seed = {
            let mut v = m.to_json();
            if let Json::Obj(pairs) = &mut v {
                for (k, val) in pairs.iter_mut() {
                    if k == "seed" {
                        *val = Json::int(42);
                    }
                }
            }
            v
        };
        assert!(matches!(
            Manifest::from_json(&bad_seed),
            Err(StoreError::Manifest { .. })
        ));
    }
}
