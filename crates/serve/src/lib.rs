//! # elsi-serve — sharded serving on top of ELSI
//!
//! The paper's pitch (§I, Fig. 1) is that cheap (re)builds let a learned
//! spatial index keep up with heavy update traffic — "check-ins from
//! millions of users". This crate supplies the serving topology that pitch
//! implies: the unit square is partitioned into an R×C grid of **shards**,
//! each shard is a full, independent ELSI update lifecycle
//! (`UpdateProcessor<DeltaOverlay<_>>` — delta layer, drift tracking,
//! rebuild policy, §IV-B2), and a [`Router`] sends every query and update
//! to exactly the shards that can be involved.
//!
//! Mapping to paper concepts:
//!
//! * [`router`] — query routing. The paper's indices answer a query by
//!   *predict-and-scan* inside one model; the router is the layer above,
//!   choosing which shard's model predicts (O(1) for points, an overlap
//!   set for windows, a MINDIST-pruned frontier for kNN). Two policies
//!   ship: the uniform [`GridRouter`] and the [`LearnedRouter`], whose
//!   shard boundaries are equi-mass quantile cuts read off per-axis
//!   empirical CDF models (`elsi_ml::PwlModel`), keeping shard occupancy
//!   balanced under skew (`DESIGN.md` §13).
//! * [`persist`] — durable serving directories (`DESIGN.md` §14): one
//!   manifest + per-shard snapshot/WAL files, written generationally so a
//!   crash at any byte leaves a recoverable directory.
//!   [`sharded::ShardedIndex::save`] rotates journals; `open` restores the
//!   router *without refitting* and recovers every shard in parallel from
//!   its snapshot plus journaled tail.
//! * [`sharded`] — [`sharded::ShardedIndex`] owns the per-shard update
//!   processors, builds them in parallel on the rayon pool with per-shard
//!   deterministic seeds (the same seeding discipline as the method
//!   scorer's `measure_method_costs`), and merges cross-shard kNN results
//!   exactly (proof sketch in `DESIGN.md` §9). Each shard reuses the
//!   existing rebuild predictor / policy machinery unchanged — sharding
//!   multiplies the paper's build-time savings by the shard count, because
//!   a hotspot rebuilds one shard, not the world.
//!
//! Layering note: ISSUE-level docs describe this crate as "re-exported
//! from `elsi`", but `elsi-serve` sits *above* `elsi` (it consumes
//! `UpdateProcessor`/`DeltaOverlay`), so a re-export would be a dependency
//! cycle. Depend on `elsi-serve` directly; everything else re-exports from
//! here.
//!
//! ```no_run
//! use elsi::{Elsi, ElsiConfig};
//! use elsi_indices::SpatialIndex;
//! use elsi_serve::{ShardedConfig, ShardedIndex};
//!
//! let points = elsi_data::gen::osm1_like(100_000, 42);
//! let elsi = Elsi::new(ElsiConfig::default());
//! let sharded = ShardedIndex::zm(points, &ShardedConfig::grid(2, 2), &elsi);
//! let hits = sharded.knn_query(elsi_spatial::Point::at(0.5, 0.5), 10);
//! assert_eq!(hits.len(), 10);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod persist;
pub mod router;
pub mod sharded;

pub use persist::{
    decode_router_state, encode_router_state, read_manifest, zm_codec, Manifest, PersistRouter,
    RouterState, MANIFEST_FORMAT, MANIFEST_NAME, SEC_ROUTER,
};
pub use router::{shard_occupancy, GridRouter, LearnedRouter, Router};
pub use sharded::{
    canonical_knn_cmp, canonical_point_key, ShardContext, ShardStats, ShardedConfig, ShardedIndex,
};
