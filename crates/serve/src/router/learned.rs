//! Learned CDF routing: equi-mass shard boundaries from piecewise-linear
//! rank models.
//!
//! [`GridRouter`](super::GridRouter) cuts the unit square uniformly, so a
//! skewed workload piles its points into a few shards while the rest
//! idle. [`LearnedRouter`] instead *learns* the data distribution: it
//! fits an ε-bounded piecewise-linear model of each axis's empirical CDF
//! (`elsi_ml::PwlModel`, the same shrinking-cone machinery the PWL index
//! method uses) and places shard boundaries at equi-mass quantiles —
//! inverted-CDF positions where each cut sheds `1/parts` of the sample
//! mass — so every shard owns roughly `n / S` points regardless of skew.
//!
//! Topology: the x axis is cut into `cols` columns from the x-marginal
//! CDF, then each column's y axis is cut into `rows` cells from that
//! column's *conditional* y-CDF (a Flood-style layout). Conditional
//! per-column cuts matter for clustered data, where the y distribution
//! varies with x and a single global y-marginal would rebalance nothing.
//!
//! The router satisfies the [`Router`](super::Router) contract exactly
//! like the grid does — ownership is a pure function of coordinates and
//! closed cell rectangles cover it — so the cross-shard kNN merge proof
//! and the batched `par_*` paths are unchanged (`DESIGN.md` §13).

use elsi_ml::PwlModel;
use elsi_spatial::{Point, Rect};

use super::Router;

/// Cap on the number of sample points [`LearnedRouter::fit_sampled`]
/// feeds into the CDF fit: quantile cuts need a sketch of the
/// distribution, not every point.
const MAX_FIT_SAMPLE: usize = 100_000;

/// An R×C partition of the unit square with learned, equi-mass cell
/// boundaries.
///
/// Shard ids are row-major like the grid router's: shard `r * cols + c`
/// owns `[x_cuts[c], x_cuts[c+1]] × [y_cuts[c][r], y_cuts[c][r+1]]`. A
/// coordinate exactly on an interior cut belongs to the *higher* cell,
/// and `1.0` to the last cell — the same closed-interval convention as
/// [`GridRouter`](super::GridRouter), so boundary points have exactly one
/// owner.
///
/// Degenerate training samples (empty, too small, or with fewer distinct
/// coordinate values than cuts) make equi-mass cuts impossible; the
/// affected axis falls back to uniform grid cuts, so the router always
/// produces `rows × cols` non-empty, strictly increasing cells. With a
/// fully degenerate sample the router *is* the grid router.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedRouter {
    rows: usize,
    cols: usize,
    /// `cols + 1` strictly increasing x cuts; first `0.0`, last `1.0`.
    x_cuts: Vec<f64>,
    /// Per column: `rows + 1` strictly increasing y cuts, first `0.0`,
    /// last `1.0`. `y_cuts.len() == cols`.
    y_cuts: Vec<Vec<f64>>,
}

impl LearnedRouter {
    /// Fits a `rows × cols` router (each clamped up to at least 1) to
    /// `sample`.
    ///
    /// Deterministic: same sample and shape, same router — coordinates
    /// are ordered with `total_cmp` and the fit is a fixed one-pass
    /// algorithm, so deployments seeded from the same data route
    /// identically (see "determinism under sharding", `DESIGN.md` §9).
    pub fn fit(sample: &[Point], rows: usize, cols: usize) -> Self {
        let rows = rows.max(1);
        let cols = cols.max(1);

        let mut xs: Vec<f64> = sample.iter().map(|p| p.x).collect();
        xs.sort_unstable_by(|a, b| a.total_cmp(b));
        let x_cuts = axis_cuts(&xs, cols).unwrap_or_else(|| uniform_cuts(cols));

        // Route the sample through the learned x cuts, then fit each
        // column's conditional y-CDF on exactly the points it will own.
        let mut col_ys: Vec<Vec<f64>> = vec![Vec::new(); cols];
        for p in sample {
            if let Some(ys) = col_ys.get_mut(cut_cell(p.x, &x_cuts)) {
                ys.push(p.y);
            }
        }
        let y_cuts = col_ys
            .into_iter()
            .map(|mut ys| {
                ys.sort_unstable_by(|a, b| a.total_cmp(b));
                axis_cuts(&ys, rows).unwrap_or_else(|| uniform_cuts(rows))
            })
            .collect();

        Self {
            rows,
            cols,
            x_cuts,
            y_cuts,
        }
    }

    /// [`LearnedRouter::fit`] over a deterministic stride subsample capped
    /// at 100k points — large builds pay a bounded fitting cost while the
    /// stride preserves the empirical distribution.
    pub fn fit_sampled(points: &[Point], rows: usize, cols: usize) -> Self {
        let step = points.len().div_ceil(MAX_FIT_SAMPLE).max(1);
        if step <= 1 {
            return Self::fit(points, rows, cols);
        }
        let sample: Vec<Point> = points.iter().step_by(step).copied().collect();
        Self::fit(&sample, rows, cols)
    }

    /// Reassembles a router from previously fitted cuts — the recovery
    /// path of the persistence layer (`DESIGN.md` §14), where the cuts
    /// come back from a serving-directory snapshot instead of a fit.
    ///
    /// Returns `None` unless the cuts satisfy every invariant the fit
    /// guarantees: `x_cuts` has `cols + 1` strictly increasing values
    /// anchored at `0.0` and `1.0`, and `y_cuts` has one such `rows + 1`
    /// cut set per column. A decoded cut set that fails this check is
    /// corrupt — accepting it would break the closed-cell ownership
    /// contract ([`Router`]) that the cross-shard merge proofs rely on.
    pub fn from_cuts(
        rows: usize,
        cols: usize,
        x_cuts: Vec<f64>,
        y_cuts: Vec<Vec<f64>>,
    ) -> Option<Self> {
        let anchored = |cuts: &[f64], parts: usize| {
            cuts.len() == parts + 1
                && cuts.first() == Some(&0.0)
                && cuts.last() == Some(&1.0)
                && cuts.iter().zip(cuts.iter().skip(1)).all(|(a, b)| a < b)
        };
        if rows == 0 || cols == 0 || !anchored(&x_cuts, cols) {
            return None;
        }
        if y_cuts.len() != cols || !y_cuts.iter().all(|cuts| anchored(cuts, rows)) {
            return None;
        }
        Some(Self {
            rows,
            cols,
            x_cuts,
            y_cuts,
        })
    }

    /// Rows of the partition.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the partition.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The learned x cuts: `cols + 1` strictly increasing values from
    /// `0.0` to `1.0`.
    pub fn x_cuts(&self) -> &[f64] {
        &self.x_cuts
    }

    /// The learned y cuts of column `col` (`rows + 1` strictly increasing
    /// values from `0.0` to `1.0`), or `None` past the last column.
    pub fn y_cuts(&self, col: usize) -> Option<&[f64]> {
        self.y_cuts.get(col).map(Vec::as_slice)
    }

    /// Column of `x` under the learned x cuts.
    fn col_of(&self, x: f64) -> usize {
        cut_cell(x, &self.x_cuts)
    }

    /// Row of `y` inside column `col`.
    fn row_of(&self, col: usize, y: f64) -> usize {
        match self.y_cuts.get(col) {
            Some(cuts) => cut_cell(y, cuts),
            None => 0,
        }
    }
}

impl Router for LearnedRouter {
    fn num_shards(&self) -> usize {
        self.rows * self.cols
    }

    // lint:hot_path
    // lint:serving_root
    fn shard_of(&self, p: Point) -> usize {
        let c = self.col_of(p.x);
        self.row_of(c, p.y) * self.cols + c
    }

    fn shard_rect(&self, shard: usize) -> Rect {
        let c = shard % self.cols;
        let r = shard / self.cols;
        let (lo_x, hi_x) = cut_bounds(&self.x_cuts, c);
        let (lo_y, hi_y) = match self.y_cuts.get(c) {
            Some(cuts) => cut_bounds(cuts, r),
            None => (0.0, 1.0),
        };
        Rect::new(lo_x, lo_y, hi_x, hi_y)
    }

    fn shards_for_window(&self, w: &Rect) -> Vec<usize> {
        if w.is_empty() {
            return Vec::new();
        }
        // Columns intersecting the window form a contiguous x range; the
        // row range then differs per column (conditional y cuts), so
        // enumerate rows within each column. Like the grid router, lower
        // cells merely *touching* `w` on a shared cut are dropped: a
        // boundary coordinate belongs to the higher cell.
        let c0 = self.col_of(w.lo_x);
        let c1 = self.col_of(w.hi_x);
        let mut out = Vec::new();
        for c in c0..=c1 {
            let r0 = self.row_of(c, w.lo_y);
            let r1 = self.row_of(c, w.hi_y);
            for r in r0..=r1 {
                out.push(r * self.cols + c);
            }
        }
        out.sort_unstable();
        out
    }
}

/// Cell of `v` under strictly increasing `cuts` (`len == parts + 1`).
///
/// Counts the cuts at or below `v`, which lands a coordinate exactly on
/// an interior cut in the *higher* cell; the final `min` folds `v == 1.0`
/// (at or past the last cut) into the last cell. NaN clamps to `0.0`.
/// Total, allocation-free and panic-free — this sits on the query hot
/// path under `shard_of`.
fn cut_cell(v: f64, cuts: &[f64]) -> usize {
    let v = v.clamp(0.0, 1.0);
    let k = cuts.partition_point(|&c| c <= v);
    k.saturating_sub(1).min(cuts.len().saturating_sub(2))
}

/// Closed `[lo, hi]` span of `cell` under `cuts`; out-of-range cells
/// degrade to the full axis rather than panic.
fn cut_bounds(cuts: &[f64], cell: usize) -> (f64, f64) {
    let lo = cuts.get(cell).copied().unwrap_or(0.0);
    let hi = cuts.get(cell + 1).copied().unwrap_or(1.0);
    (lo, hi)
}

/// Uniform grid cuts `0, 1/parts, …, 1` — the degenerate-sample fallback
/// (and the exact boundaries `GridRouter` uses on the same axis).
fn uniform_cuts(parts: usize) -> Vec<f64> {
    let parts = parts.max(1);
    (0..=parts).map(|j| j as f64 / parts as f64).collect()
}

/// ε for the PWL CDF fit of one axis: a small fraction of the per-part
/// mass, so the ≤ 2ε rank slack at each cut cannot disturb the balance
/// the cuts exist to create; clamped so tiny samples still fit (ε ≥ 1 is
/// required) and huge ones stay cheap.
fn cdf_epsilon(n: usize, parts: usize) -> usize {
    (n / parts.max(1) / 16).clamp(4, 256)
}

/// Equi-mass cuts for one axis: `parts + 1` strictly increasing values
/// from `0.0` to `1.0`, with cut `j` at the fitted CDF's `j·n/parts`
/// quantile. `sorted` must be ascending (callers sort with `total_cmp`).
///
/// Returns `None` — fall back to uniform cuts — when no equi-mass cut
/// set exists: empty or too-small samples, fewer distinct values than
/// parts, or quantiles that collapse onto each other / the axis ends
/// (heavy duplicate mass, e.g. TPC-H's 50 distinct x values). The
/// strict-monotonicity check is the robustness guarantee: a returned cut
/// set can never produce empty or inverted cells.
fn axis_cuts(sorted: &[f64], parts: usize) -> Option<Vec<f64>> {
    if parts <= 1 {
        return Some(vec![0.0, 1.0]);
    }
    let n = sorted.len();
    if n < 2 * parts {
        return None;
    }
    let distinct = 1 + sorted
        .iter()
        .zip(sorted.iter().skip(1))
        .filter(|(a, b)| a < b)
        .count();
    if distinct < parts {
        return None;
    }
    let model = PwlModel::fit(sorted, cdf_epsilon(n, parts));
    let mut cuts = Vec::with_capacity(parts + 1);
    cuts.push(0.0);
    for j in 1..parts {
        let target = (j as f64 / parts as f64) * n as f64;
        let cut = model.quantile_key(target);
        let prev = cuts.last().copied().unwrap_or(0.0);
        if !(cut > prev && cut < 1.0) {
            return None;
        }
        cuts.push(cut);
    }
    cuts.push(1.0);
    Some(cuts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points shaped `y = u⁴` (heavy mass near y = 0) on a uniform x —
    /// the skewed acceptance workload, deterministic without RNG.
    fn skewed_points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                // Low-discrepancy uniform x via the golden-ratio sequence.
                let x = (i as f64 * 0.618_033_988_749_894_9).fract();
                let u = (i as f64 + 0.5) / n as f64;
                Point::new(i as u64, x, u.powi(4))
            })
            .collect()
    }

    fn max_over_mean(counts: &[usize]) -> f64 {
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
        max / mean.max(1e-12)
    }

    #[test]
    fn cuts_are_strictly_increasing_and_anchored() {
        let r = LearnedRouter::fit(&skewed_points(20_000), 8, 8);
        let check = |cuts: &[f64], parts: usize| {
            assert_eq!(cuts.len(), parts + 1);
            assert_eq!(cuts.first().copied(), Some(0.0));
            assert_eq!(cuts.last().copied(), Some(1.0));
            assert!(cuts.iter().zip(cuts.iter().skip(1)).all(|(a, b)| a < b));
        };
        check(r.x_cuts(), 8);
        for c in 0..8 {
            check(r.y_cuts(c).map_or(&[][..], |v| v), 8);
        }
    }

    #[test]
    fn learned_cuts_balance_skew_where_grid_does_not() {
        let pts = skewed_points(50_000);
        let learned = LearnedRouter::fit(&pts, 8, 8);
        let grid = super::super::GridRouter::new(8, 8);
        let lm = max_over_mean(&super::super::shard_occupancy(&learned, &pts));
        let gm = max_over_mean(&super::super::shard_occupancy(&grid, &pts));
        assert!(lm <= 1.5, "learned max/mean {lm:.2} > 1.5");
        assert!(
            gm > 3.0,
            "grid max/mean {gm:.2} ≤ 3.0 — workload not skewed enough"
        );
    }

    #[test]
    fn empty_sample_falls_back_to_grid_cuts() {
        let r = LearnedRouter::fit(&[], 4, 4);
        assert_eq!(r.x_cuts(), &uniform_cuts(4)[..]);
        for c in 0..4 {
            assert_eq!(r.y_cuts(c), Some(&uniform_cuts(4)[..]));
        }
        // A fully degenerate fit routes exactly like the grid's rects.
        for s in 0..r.num_shards() {
            assert_eq!(
                r.shard_rect(s),
                super::super::GridRouter::new(4, 4).shard_rect(s)
            );
        }
    }

    #[test]
    fn all_duplicate_sample_falls_back_to_grid_cuts() {
        let pts: Vec<Point> = (0..100).map(|i| Point::new(i, 0.5, 0.5)).collect();
        let r = LearnedRouter::fit(&pts, 4, 4);
        assert_eq!(r.x_cuts(), &uniform_cuts(4)[..]);
        for c in 0..4 {
            assert_eq!(r.y_cuts(c), Some(&uniform_cuts(4)[..]));
        }
    }

    #[test]
    fn too_few_distinct_values_fall_back_per_axis() {
        // Three distinct x values cannot support 8 columns, but y is
        // continuous: the x axis falls back to uniform, y cuts stay
        // learned (fallback is per-axis, not all-or-nothing).
        let pts: Vec<Point> = (0..4000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 4000.0;
                Point::new(i as u64, [0.2, 0.5, 0.8][i % 3], u * u)
            })
            .collect();
        let r = LearnedRouter::fit(&pts, 4, 8);
        assert_eq!(r.x_cuts(), &uniform_cuts(8)[..]);
        // Columns that own the duplicate atoms have continuous y: learned
        // cuts differ from uniform.
        let owning = cut_cell(0.5, r.x_cuts());
        let cuts = r.y_cuts(owning).map_or(&[][..], |v| v);
        assert_ne!(cuts, &uniform_cuts(4)[..]);
        assert!(cuts.iter().zip(cuts.iter().skip(1)).all(|(a, b)| a < b));
    }

    #[test]
    fn tiny_sample_falls_back_to_grid_cuts() {
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::new(i, i as f64 / 5.0, i as f64 / 5.0))
            .collect();
        let r = LearnedRouter::fit(&pts, 8, 8);
        assert_eq!(r.x_cuts(), &uniform_cuts(8)[..]);
    }

    #[test]
    fn boundary_coordinates_go_to_the_higher_cell() {
        let r = LearnedRouter::fit(&skewed_points(10_000), 2, 2);
        let bx = r.x_cuts().get(1).copied().unwrap_or(0.5);
        let by0 = r.y_cuts(0).and_then(|c| c.get(1)).copied().unwrap_or(0.5);
        // Exactly on the interior x cut → right column.
        assert_eq!(r.shard_of(Point::at(bx, 0.0)) % 2, 1);
        // Exactly on column 0's interior y cut → upper row of column 0.
        assert_eq!(r.shard_of(Point::at(0.0, by0)), 2);
        // 1.0 folds into the last cell; out-of-range clamps to the edge.
        assert_eq!(r.shard_of(Point::at(1.0, 1.0)), 3);
        assert_eq!(r.shard_of(Point::at(-0.3, 2.0)), 2);
        assert_eq!(r.shard_of(Point::at(f64::NAN, 0.0)), 0);
    }

    #[test]
    fn ownership_is_covered_by_rects_and_windows_route_owners() {
        let r = LearnedRouter::fit(&skewed_points(10_000), 3, 5);
        for i in 0..=40 {
            for j in 0..=40 {
                let p = Point::at(i as f64 / 40.0, j as f64 / 40.0);
                let s = r.shard_of(p);
                assert!(s < r.num_shards());
                assert!(r.shard_rect(s).contains(&p), "rect must cover owner");
            }
        }
        let w = Rect::new(0.05, 0.0, 0.3, 0.12);
        let fast = r.shards_for_window(&w);
        assert!(fast.iter().zip(fast.iter().skip(1)).all(|(a, b)| a < b));
        for i in 0..=10 {
            for j in 0..=10 {
                let p = Point::at(
                    w.lo_x + (w.hi_x - w.lo_x) * i as f64 / 10.0,
                    w.lo_y + (w.hi_y - w.lo_y) * j as f64 / 10.0,
                );
                assert!(fast.contains(&r.shard_of(p)), "window point {p:?}");
            }
        }
        assert!(r.shards_for_window(&Rect::empty()).is_empty());
    }

    #[test]
    fn from_cuts_accepts_fitted_cuts_and_rejects_broken_ones() {
        let r = LearnedRouter::fit(&skewed_points(5_000), 3, 2);
        let rebuilt = LearnedRouter::from_cuts(
            r.rows(),
            r.cols(),
            r.x_cuts().to_vec(),
            (0..r.cols())
                .map(|c| r.y_cuts(c).unwrap().to_vec())
                .collect(),
        )
        .unwrap();
        assert_eq!(rebuilt, r);

        let uc = uniform_cuts;
        // Zero-sized partitions.
        assert!(LearnedRouter::from_cuts(0, 2, uc(2), vec![uc(0); 2]).is_none());
        // Wrong x cut count for the column count.
        assert!(LearnedRouter::from_cuts(2, 2, uc(3), vec![uc(2); 2]).is_none());
        // Cuts not anchored at 0.0 / 1.0.
        assert!(LearnedRouter::from_cuts(2, 2, vec![0.1, 0.5, 1.0], vec![uc(2); 2]).is_none());
        assert!(LearnedRouter::from_cuts(2, 2, vec![0.0, 0.5, 0.9], vec![uc(2); 2]).is_none());
        // Not strictly increasing (and NaN, which orders as nothing).
        assert!(LearnedRouter::from_cuts(2, 2, vec![0.0, 0.0, 1.0], vec![uc(2); 2]).is_none());
        assert!(LearnedRouter::from_cuts(2, 2, vec![0.0, f64::NAN, 1.0], vec![uc(2); 2]).is_none());
        // One y cut set per column, each sized rows + 1.
        assert!(LearnedRouter::from_cuts(2, 2, uc(2), vec![uc(2); 1]).is_none());
        assert!(LearnedRouter::from_cuts(2, 2, uc(2), vec![uc(2), uc(3)]).is_none());
    }

    #[test]
    fn fit_sampled_matches_fit_under_the_cap_and_is_deterministic() {
        let pts = skewed_points(30_000);
        assert_eq!(
            LearnedRouter::fit_sampled(&pts, 4, 4),
            LearnedRouter::fit(&pts, 4, 4)
        );
        assert_eq!(
            LearnedRouter::fit_sampled(&pts, 4, 4),
            LearnedRouter::fit_sampled(&pts, 4, 4)
        );
    }
}
