//! Query-to-shard routing.
//!
//! A [`Router`] is a pure, immutable description of a spatial partition:
//! it owns no data and takes no locks, so the query hot path can consult
//! it freely while shards are being updated elsewhere. Correctness of the
//! serving layer rests on two contracts spelled out on the trait.
//!
//! Two implementations ship: [`GridRouter`] (uniform R×C cells, zero
//! per-deployment state) and [`LearnedRouter`] (equi-mass quantile cuts
//! derived from per-axis empirical CDF models, `DESIGN.md` §13), which
//! keeps shard occupancy balanced under skew.

mod learned;

pub use learned::LearnedRouter;

use elsi_spatial::{Point, Rect};

/// A spatial partition of the unit square into `num_shards` shards.
///
/// Contracts every implementation must uphold (relied on by
/// `ShardedIndex`'s query merging, see `DESIGN.md` §9):
///
/// 1. **Ownership is a function of coordinates.** [`Router::shard_of`]
///    maps every point of the unit square to exactly one shard, and the
///    same coordinates always map to the same shard. Updates and point
///    queries are routed with it, so a stored point is always found again.
/// 2. **Rectangles cover ownership.** Every point `p` lies inside
///    [`Router::shard_rect`]`(shard_of(p))` (rectangles are closed, so
///    they may overlap on shared boundaries — that is a cover, not a
///    partition, and it is fine: MINDIST pruning and window routing only
///    need the rectangle to be a *superset* of the shard's points).
pub trait Router: Send + Sync {
    /// Number of shards in the partition.
    fn num_shards(&self) -> usize;

    /// The shard owning point `p` (O(1) for the grid router).
    fn shard_of(&self, p: Point) -> usize;

    /// Closed bounding rectangle of shard `shard`'s territory.
    fn shard_rect(&self, shard: usize) -> Rect;

    /// Every shard that could own a point inside window `w`, ascending by
    /// shard id — a superset of the shards owning points in `w`, as small
    /// as the implementation can make it. The default scans all closed
    /// rectangles for intersection (always a valid superset); the grid
    /// router overrides it with direct enumeration that also drops lower
    /// cells merely *touching* `w` on a shared boundary (boundary points
    /// belong to the higher cell, so those cells own nothing in `w`).
    fn shards_for_window(&self, w: &Rect) -> Vec<usize> {
        (0..self.num_shards())
            .filter(|&s| self.shard_rect(s).intersects(w))
            .collect()
    }
}

/// Any boxed router routes like its contents — lets callers pick a
/// routing policy at runtime (`Box<dyn Router>`) and still use the
/// generic `ShardedIndex` machinery.
impl<R: Router + ?Sized> Router for Box<R> {
    fn num_shards(&self) -> usize {
        (**self).num_shards()
    }

    fn shard_of(&self, p: Point) -> usize {
        (**self).shard_of(p)
    }

    fn shard_rect(&self, shard: usize) -> Rect {
        (**self).shard_rect(shard)
    }

    fn shards_for_window(&self, w: &Rect) -> Vec<usize> {
        (**self).shards_for_window(w)
    }
}

/// Per-shard ownership counts of `points` under `router` — the
/// load-balance diagnostic behind the routing experiment
/// (`elsi-bench --bin sharded`): a balanced router keeps
/// `max(count) / mean(count)` near 1 regardless of data skew.
pub fn shard_occupancy<R: Router + ?Sized>(router: &R, points: &[Point]) -> Vec<usize> {
    let mut counts = vec![0usize; router.num_shards()];
    for p in points {
        if let Some(c) = counts.get_mut(router.shard_of(*p)) {
            *c += 1;
        }
    }
    counts
}

/// The R×C uniform grid partition of the unit square.
///
/// Shard ids are row-major: shard `r * cols + c` owns
/// `[c/cols, (c+1)/cols] × [r/rows, (r+1)/rows]`. A coordinate exactly on
/// an interior boundary belongs to the *higher* cell, and `1.0` to the
/// last cell — the same closed-interval convention as
/// `elsi_spatial::curve::convert::coord_to_cell`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridRouter {
    rows: usize,
    cols: usize,
}

impl GridRouter {
    /// A `rows × cols` grid (each clamped up to at least 1).
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows: rows.max(1),
            cols: cols.max(1),
        }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cell of `v` on an `n`-cell axis. The clamp bounds the scaled value
    /// to `[0, n]` before truncation and the `min` folds `v == 1.0` into
    /// the last cell, so the cast is total.
    fn cell_of(v: f64, n: usize) -> usize {
        let scaled = v.clamp(0.0, 1.0) * n as f64;
        (scaled as usize).min(n - 1)
    }
}

impl Router for GridRouter {
    fn num_shards(&self) -> usize {
        self.rows * self.cols
    }

    // lint:hot_path
    fn shard_of(&self, p: Point) -> usize {
        Self::cell_of(p.y, self.rows) * self.cols + Self::cell_of(p.x, self.cols)
    }

    fn shard_rect(&self, shard: usize) -> Rect {
        let r = shard / self.cols;
        let c = shard % self.cols;
        Rect::new(
            c as f64 / self.cols as f64,
            r as f64 / self.rows as f64,
            (c + 1) as f64 / self.cols as f64,
            (r + 1) as f64 / self.rows as f64,
        )
    }

    fn shards_for_window(&self, w: &Rect) -> Vec<usize> {
        if w.is_empty() {
            return Vec::new();
        }
        // The grid cells intersecting an axis-aligned window form a
        // contiguous block of rows × cols: enumerate it directly.
        let c0 = Self::cell_of(w.lo_x, self.cols);
        let c1 = Self::cell_of(w.hi_x, self.cols);
        let r0 = Self::cell_of(w.lo_y, self.rows);
        let r1 = Self::cell_of(w.hi_y, self.rows);
        let mut out = Vec::with_capacity((r1 - r0 + 1) * (c1 - c0 + 1));
        for r in r0..=r1 {
            for c in c0..=c1 {
                out.push(r * self.cols + c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_total_and_covered_by_rects() {
        let g = GridRouter::new(3, 4);
        for i in 0..=20 {
            for j in 0..=20 {
                let p = Point::at(i as f64 / 20.0, j as f64 / 20.0);
                let s = g.shard_of(p);
                assert!(s < g.num_shards());
                assert!(g.shard_rect(s).contains(&p), "rect must cover owner");
            }
        }
    }

    #[test]
    fn boundary_points_go_to_the_higher_cell() {
        let g = GridRouter::new(2, 2);
        assert_eq!(g.shard_of(Point::at(0.5, 0.0)), 1);
        assert_eq!(g.shard_of(Point::at(0.0, 0.5)), 2);
        assert_eq!(g.shard_of(Point::at(0.5, 0.5)), 3);
        // 1.0 folds into the last cell, not past it.
        assert_eq!(g.shard_of(Point::at(1.0, 1.0)), 3);
        // Out-of-range coordinates clamp to the edge shards.
        assert_eq!(g.shard_of(Point::at(-0.3, 2.0)), 2);
    }

    #[test]
    fn window_routing_covers_ownership_and_never_exceeds_intersection() {
        let g = GridRouter::new(3, 5);
        let windows = [
            Rect::new(0.1, 0.1, 0.2, 0.9),
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(0.49, 0.49, 0.51, 0.51),
            Rect::new(0.2, 0.4, 0.2, 0.4), // degenerate point window on a boundary
        ];
        for w in &windows {
            let fast = g.shards_for_window(w);
            // Never more than the closed-rect intersection scan...
            let scan: Vec<usize> = (0..g.num_shards())
                .filter(|&s| g.shard_rect(s).intersects(w))
                .collect();
            assert!(fast.iter().all(|s| scan.contains(s)), "window {w:?}");
            assert!(fast.windows(2).all(|p| p[0] < p[1]), "ascending ids");
            // ...and always a cover of ownership: any point of the window
            // routes to a listed shard.
            for i in 0..=10 {
                for j in 0..=10 {
                    let p = Point::at(
                        w.lo_x + (w.hi_x - w.lo_x) * i as f64 / 10.0,
                        w.lo_y + (w.hi_y - w.lo_y) * j as f64 / 10.0,
                    );
                    assert!(fast.contains(&g.shard_of(p)), "window {w:?} point {p:?}");
                }
            }
        }
        assert!(g.shards_for_window(&Rect::empty()).is_empty());
    }
}
