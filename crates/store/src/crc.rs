//! Hand-rolled CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! The same checksum `gzip`/`zlib`/Ethernet use, table-driven with
//! compile-time tables. Every snapshot section and every WAL record
//! carries one, so any single damaged byte is detected with probability
//! `1 − 2⁻³²` and recovery can refuse it instead of decoding garbage.
//!
//! The kernel is slice-by-8: eight derived tables let one loop iteration
//! fold eight input bytes with independent lookups instead of a serial
//! byte-at-a-time chain. Snapshot restore reads and checksums every
//! section of every shard on the recovery path, so this is the
//! subsystem's hottest loop — slicing moves it from ~0.25 GB/s to
//! well over 1 GB/s, which is the difference between CRC-bound and
//! I/O-bound recovery.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Streaming CRC-32 state, for checksumming data produced in pieces.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let word = |c: &[u8]| u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = word(&chunk[0..4]) ^ crc;
            let hi = word(&chunk[4..8]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            let idx = ((crc ^ b as u32) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLES[0][idx];
        }
        self.state = crc;
    }

    /// Finishes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_reference_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_byte_damage() {
        let mut data: Vec<u8> = (0..100u8).collect();
        let clean = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 0x40;
            assert_ne!(crc32(&data), clean, "flip at {i} undetected");
            data[i] ^= 0x40;
        }
    }
}
