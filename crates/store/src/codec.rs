//! Little-endian binary primitives: the byte-level vocabulary every
//! durable structure in the workspace is written in.
//!
//! [`ByteWriter`] appends fixed-width little-endian scalars and
//! length-prefixed sequences to a growable buffer; [`ByteReader`] is its
//! bounds-checked inverse. Readers never panic on damaged input: every
//! read is `get`-based and out-of-bounds surfaces as
//! [`StoreError::Truncated`], and sequence lengths are validated against
//! the bytes actually remaining before anything is allocated, so a
//! corrupted length field cannot trigger a huge allocation.

use crate::error::StoreError;

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern — the round trip is
    /// bit-exact, including `-0.0` and every NaN payload.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a bool as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends raw bytes with no framing (caller knows the length).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a length-prefixed `f64` sequence.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a length-prefixed `u64` sequence.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a length-prefixed `usize` sequence (as `u64`s).
    pub fn put_usizes(&mut self, vs: &[usize]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v as u64);
        }
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
///
/// Carries the name of the structure being decoded so every error says
/// *what* was truncated, not just where.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> ByteReader<'a> {
    /// Starts decoding `buf`; `section` names the structure for errors.
    pub fn new(buf: &'a [u8], section: &'a str) -> Self {
        Self {
            buf,
            pos: 0,
            section,
        }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn truncated(&self) -> StoreError {
        StoreError::Truncated {
            section: self.section.to_string(),
            offset: self.pos,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, StoreError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` and converts it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, StoreError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| StoreError::corrupt(self.section, "length exceeds usize"))
    }

    /// Reads a bool byte; anything other than `0`/`1` is corrupt.
    pub fn get_bool(&mut self) -> Result<bool, StoreError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::corrupt(
                self.section,
                format!("bad bool byte {other}"),
            )),
        }
    }

    /// Reads a sequence length that claims `elem_size`-byte elements,
    /// validating it against the bytes actually remaining.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize, StoreError> {
        let n = self.get_usize()?;
        let need = n.checked_mul(elem_size.max(1));
        match need {
            Some(need) if need <= self.remaining() => Ok(n),
            _ => Err(StoreError::corrupt(
                self.section,
                format!(
                    "sequence length {n} exceeds remaining {} bytes",
                    self.remaining()
                ),
            )),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let n = self.get_len(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(self.section, "invalid UTF-8 string"))
    }

    /// Reads `n` raw bytes (the inverse of [`ByteWriter::put_raw`] when
    /// the caller knows the length from elsewhere in the stream). Bulk
    /// column decoders use this to lift one bounds check out of
    /// per-element loops.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n)
    }

    /// Decodes a raw byte run as little-endian `u64`s. `raw` must have
    /// been cut by [`ByteReader::get_raw`] with a validated length, so
    /// its size is a multiple of 8.
    fn decode_u64s(raw: &[u8]) -> Vec<u64> {
        raw.chunks_exact(8)
            .map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                u64::from_le_bytes(a)
            })
            .collect()
    }

    /// Reads a length-prefixed `f64` sequence (bulk: one bounds check,
    /// then a straight-line conversion loop — this is the snapshot
    /// restore hot path for point and key columns).
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, StoreError> {
        let n = self.get_len(8)?;
        let raw = self.take(n * 8)?;
        Ok(Self::decode_u64s(raw)
            .into_iter()
            .map(f64::from_bits)
            .collect())
    }

    /// Reads a length-prefixed `u64` sequence (bulk, like
    /// [`ByteReader::get_f64s`]).
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, StoreError> {
        let n = self.get_len(8)?;
        let raw = self.take(n * 8)?;
        Ok(Self::decode_u64s(raw))
    }

    /// Reads a length-prefixed `usize` sequence (bulk decode; each value
    /// still individually range-checked for 32-bit targets).
    pub fn get_usizes(&mut self) -> Result<Vec<usize>, StoreError> {
        let n = self.get_len(8)?;
        let raw = self.take(n * 8)?;
        Self::decode_u64s(raw)
            .into_iter()
            .map(|v| {
                usize::try_from(v)
                    .map_err(|_| StoreError::corrupt(self.section, "length exceeds usize"))
            })
            .collect()
    }

    /// Asserts the input was fully consumed — trailing garbage means the
    /// payload does not match the structure that claims to own it.
    pub fn expect_end(&self) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::corrupt(
                self.section,
                format!("{} trailing bytes", self.remaining()),
            ))
        }
    }
}

/// Pluggable encoder/decoder for a built index's internal state.
///
/// A snapshot always carries the live point set, which is enough to
/// recover any index by deterministic rebuild. A codec adds the fast
/// path: [`IndexCodec::encode`] captures the built structure (trained
/// models, sorted columns, error bounds) so [`IndexCodec::decode`] can
/// reconstruct it without re-training. `encode` returning `None` means
/// "no fast path for this index" — the snapshot falls back to the
/// rebuild path and stays correct.
pub trait IndexCodec<I>: Send + Sync {
    /// Encodes the built state of `index`, or `None` when this codec has
    /// no fast path for it.
    fn encode(&self, index: &I) -> Option<Vec<u8>>;

    /// Decodes a previously encoded state.
    fn decode(&self, bytes: &[u8]) -> Result<I, StoreError>;
}

/// The no-fast-path codec: snapshots carry points only and recovery
/// rebuilds the index deterministically.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCodec;

impl<I> IndexCodec<I> for NoCodec {
    fn encode(&self, _index: &I) -> Option<Vec<u8>> {
        None
    }

    fn decode(&self, _bytes: &[u8]) -> Result<I, StoreError> {
        Err(StoreError::Unsupported {
            what: "decoding an encoded index state with NoCodec".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("héllo");
        w.put_f64s(&[1.5, f64::INFINITY]);
        w.put_u64s(&[3, 2, 1]);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes, "test");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_f64s().unwrap(), vec![1.5, f64::INFINITY]);
        assert_eq!(r.get_u64s().unwrap(), vec![3, 2, 1]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_a_clean_error_at_every_prefix() {
        let mut w = ByteWriter::new();
        w.put_u64(3);
        w.put_str("abc");
        w.put_f64s(&[1.0, 2.0]);
        let bytes = w.into_vec();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut], "prefix");
            let res: Result<(), StoreError> = (|| {
                r.get_u64()?;
                r.get_str()?;
                r.get_f64s()?;
                Ok(())
            })();
            assert!(res.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocating() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims ~2^64 elements
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes, "bomb");
        match r.get_f64s() {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_bool_is_corrupt_not_a_guess() {
        let bytes = [2u8];
        let mut r = ByteReader::new(&bytes, "flag");
        assert!(matches!(r.get_bool(), Err(StoreError::Corrupt { .. })));
    }
}
