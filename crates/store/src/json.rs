//! The workspace's one hand-rolled JSON implementation.
//!
//! The workspace is dependency-free by design (no serde), and before this
//! module existed two crates each carried their own partial JSON code:
//! `elsi-bench` a writer for `results/BENCH_*.json` and `analysis` a
//! writer plus a subset parser for its ratchet baseline. Both now consume
//! this module, as does the serving-directory manifest — one value model
//! ([`Json`]), one escaper ([`esc`]), one parser ([`Json::parse`]).
//!
//! Numbers are `f64`, as in JSON itself; integers round-trip exactly up
//! to 2⁵³, and [`Json::as_usize`] enforces integrality on read. Values
//! that must round-trip f64 bit patterns exactly (router cuts, seeds) do
//! not belong in JSON — the binary codec exists for them.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved (and emitted).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and at which byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Escapes a string for inclusion in a JSON string literal (quotes not
/// included).
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl Json {
    /// Builds an object value from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value from an integer (exact up to 2⁵³).
    pub fn int(v: usize) -> Json {
        Json::Num(v as f64)
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer. Rejects fractional values and
    /// anything outside the exactly-representable range.
    pub fn as_usize(&self) -> Option<usize> {
        let v = self.as_f64()?;
        if v.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&v) {
            Some(v as usize)
        } else {
            None
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's key/value pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialises compactly (no whitespace).
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Serialises with two-space indentation and one key per line — the
    /// shape committed artifacts (manifests, baselines) diff well in.
    pub fn write_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_num(out: &mut String, v: f64) {
        if !v.is_finite() {
            out.push_str("null"); // JSON has no NaN/inf
        } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
            out.push_str(&format!("{}", v as i64));
        } else {
            // Shortest representation that round-trips through f64.
            out.push_str(&format!("{v}"));
        }
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => Self::write_num(out, *v),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&esc(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&esc(k));
                    out.push_str("\":");
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(depth + 1));
                    item.write_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&"  ".repeat(depth + 1));
                    out.push('"');
                    out.push_str(&esc(k));
                    out.push_str("\": ");
                    v.write_pretty_into(out, depth + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            other => other.write_into(out),
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }
}

/// Recursion guard: deeper than any document the workspace writes.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", c as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
                self.depth -= 1;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    let v = self.value()?;
                    pairs.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected `,` or `}` in object")),
                    }
                }
                self.depth -= 1;
                Ok(Json::Obj(pairs))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Workspace documents never write surrogate
                            // pairs; lone surrogates are rejected.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_round_trip() {
        let doc = Json::obj(vec![
            ("format", Json::int(1)),
            ("name", Json::str("shard \"7\"\n")),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "values",
                Json::Arr(vec![Json::Num(1.5), Json::Num(-0.25), Json::int(12)]),
            ),
            ("nested", Json::obj(vec![("k", Json::str("v"))])),
        ]);
        for text in [doc.write(), doc.write_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "text: {text}");
        }
    }

    #[test]
    fn integers_are_written_without_a_fraction() {
        assert_eq!(Json::int(42).write(), "42");
        assert_eq!(Json::Num(2.5).write(), "2.5");
        assert_eq!(Json::Num(f64::NAN).write(), "null");
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_usize(), Some(3));
        assert_eq!(Json::Num(3.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::str("3").as_usize(), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":}",
            "tru",
            "01x",
            "\"\\q\"",
            "{} extra",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = Json::parse("\"a\\n\\t\\\\\\\"\\u00e9é\"").unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\\\"éé"));
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let doc = "[".repeat(100_000);
        assert!(Json::parse(&doc).is_err());
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse("{\"gen\": 7, \"files\": [\"a\", \"b\"]}").unwrap();
        assert_eq!(v.get("gen").and_then(Json::as_usize), Some(7));
        let files = v.get("files").and_then(Json::as_arr).unwrap();
        assert_eq!(files[1].as_str(), Some("b"));
        assert_eq!(v.get("missing"), None);
    }
}
