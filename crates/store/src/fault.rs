//! Fault injection for crash-consistency tests.
//!
//! [`FailingWriter`] wraps any [`Write`] and cuts it off after a chosen
//! number of bytes — every byte before the cut is delivered, everything
//! after fails with an injected I/O error. Pointing a snapshot save at
//! one simulates a crash at an arbitrary byte offset: the proptests sweep
//! the cut across the whole image and assert recovery either returns a
//! clean [`crate::StoreError`] or reproduces the survivor bit-for-bit.

use std::io::{self, Write};

/// A writer that accepts exactly `fail_at` bytes, then fails forever.
#[derive(Debug)]
pub struct FailingWriter<W: Write> {
    inner: W,
    fail_at: u64,
    written: u64,
}

impl<W: Write> FailingWriter<W> {
    /// Wraps `inner`, allowing `fail_at` bytes through before failing.
    pub fn new(inner: W, fail_at: u64) -> Self {
        Self {
            inner,
            fail_at,
            written: 0,
        }
    }

    /// Bytes successfully delivered so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer (holding whatever arrived before the cut).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let budget = self.fail_at.saturating_sub(self.written);
        if budget == 0 {
            return Err(io::Error::other("injected fault: write budget exhausted"));
        }
        let take = (buf.len() as u64).min(budget) as usize;
        let n = self.inner.write(&buf[..take])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_exactly_the_budget_then_fails() {
        let mut w = FailingWriter::new(Vec::new(), 10);
        assert!(w.write_all(&[1u8; 7]).is_ok());
        // The next write_all delivers 3 bytes, then errors.
        assert!(w.write_all(&[2u8; 7]).is_err());
        assert_eq!(w.written(), 10);
        let sink = w.into_inner();
        assert_eq!(sink.len(), 10);
        assert_eq!(&sink[..7], &[1u8; 7]);
        assert_eq!(&sink[7..], &[2u8; 3]);
    }

    #[test]
    fn zero_budget_fails_immediately() {
        let mut w = FailingWriter::new(Vec::new(), 0);
        assert!(w.write_all(b"x").is_err());
        assert!(w.into_inner().is_empty());
    }
}
