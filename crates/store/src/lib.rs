//! # elsi-store
//!
//! Durable state for ELSI: the persistence subsystem every other crate's
//! save/recover path is built on. Hand-rolled in the workspace's
//! dependency-free style (like the bench JSON emitter and the analysis
//! lexer it replaces/serves) — no serde, no third-party codecs, `std`
//! only.
//!
//! The pieces, bottom up:
//!
//! * [`crc`] — CRC-32 (IEEE), the checksum under every section and record.
//! * [`codec`] — little-endian [`ByteWriter`]/[`ByteReader`] primitives
//!   plus the [`IndexCodec`] seam by which built index state (trained
//!   models, sorted columns) is captured so recovery can skip training.
//! * [`snapshot`] — the versioned, sectioned, checksummed snapshot
//!   container, written with temp-file + atomic-rename semantics.
//! * [`wal`] — the length-framed, per-record-checksummed write-ahead
//!   log, with torn-tail prefix recovery.
//! * [`json`] — the workspace's one hand-rolled JSON reader/writer
//!   (serving-directory manifests, bench results, the analysis baseline).
//! * [`fault`] — the fault-injecting writer the crash proptests use.
//! * [`error`] — [`StoreError`], one variant per failure mode so tests
//!   can pin exactly how each kind of damage surfaces.
//!
//! What this crate deliberately does *not* know: the shapes of points,
//! updates, indices or routers. Type-specific codecs live with their
//! types (`elsi-spatial` for blocks, `elsi` for processor state,
//! `elsi-serve` for manifests/routers); this crate owns bytes, framing,
//! checksums and files.

#![warn(clippy::all)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod error;
pub mod fault;
pub mod json;
pub mod snapshot;
pub mod wal;

pub use codec::{ByteReader, ByteWriter, IndexCodec, NoCodec};
pub use crc::{crc32, Crc32};
pub use error::StoreError;
pub use fault::FailingWriter;
pub use json::{esc, Json, JsonError};
pub use snapshot::{Snapshot, SnapshotWriter, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use wal::{read_wal, read_wal_bytes, WalReplay, WalWriter, WAL_HEADER_LEN, WAL_VERSION};
