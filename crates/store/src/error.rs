//! The persistence subsystem's error vocabulary.
//!
//! Every failure mode recovery can hit has its own variant, because the
//! corruption-matrix tests pin *which* variant each kind of damage must
//! produce: a flipped payload byte must surface as a checksum rejection,
//! never as a silently-applied record or a panic.

use std::fmt;
use std::path::{Path, PathBuf};

/// Everything that can go wrong while saving or recovering durable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure (open, read, write, rename, sync).
    Io {
        /// The operation that failed (e.g. `"open"`, `"rename"`).
        op: &'static str,
        /// The file the operation targeted.
        path: PathBuf,
        /// The OS error, rendered (kept as a string so the error stays
        /// `Clone + PartialEq` for test pinning).
        message: String,
    },
    /// The file does not start with the expected magic bytes — it is not
    /// a file of the expected kind (or the header was destroyed).
    BadMagic {
        /// The file in question.
        path: PathBuf,
        /// What the first bytes actually were.
        found: [u8; 8],
    },
    /// The file's format version is newer (or older) than this build
    /// understands.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// A reader ran out of bytes mid-structure: the file (or a section
    /// payload) is shorter than its own framing claims.
    Truncated {
        /// Which structure was being decoded.
        section: String,
        /// Byte offset at which input ran out.
        offset: usize,
    },
    /// A snapshot section's CRC32 did not match its payload.
    Checksum {
        /// Which section failed verification.
        section: String,
    },
    /// A *complete* WAL record failed its CRC32 — the payload was damaged
    /// in place. Distinct from a torn tail: a torn final record is
    /// recoverable (prefix recovery), a checksum mismatch is not.
    WalChecksum {
        /// Zero-based index of the damaged record.
        record: usize,
    },
    /// Decoded data violated a structural invariant (mismatched column
    /// lengths, unsorted cuts, out-of-range index, …).
    Corrupt {
        /// Which structure was being decoded.
        section: String,
        /// What was wrong.
        detail: String,
    },
    /// The operation is not supported by the codec in use (e.g. decoding
    /// an encoded-index payload with [`crate::codec::NoCodec`], or an
    /// unknown router/index kind tag).
    Unsupported {
        /// What was requested.
        what: String,
    },
    /// The serving-directory manifest was missing a field or had the
    /// wrong shape.
    Manifest {
        /// What was wrong.
        detail: String,
    },
}

impl StoreError {
    /// Wraps an [`std::io::Error`] with the operation and path context.
    pub fn io(op: &'static str, path: &Path, err: std::io::Error) -> Self {
        StoreError::Io {
            op,
            path: path.to_path_buf(),
            message: err.to_string(),
        }
    }

    /// Shorthand for a [`StoreError::Corrupt`] with owned strings.
    pub fn corrupt(section: &str, detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            section: section.to_string(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, message } => {
                write!(f, "i/o error during {op} on {}: {message}", path.display())
            }
            StoreError::BadMagic { path, found } => {
                write!(
                    f,
                    "{} is not an ELSI store file (magic {found:02x?})",
                    path.display()
                )
            }
            StoreError::BadVersion { found, expected } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads {expected})"
                )
            }
            StoreError::Truncated { section, offset } => {
                write!(f, "truncated {section}: input ended at byte {offset}")
            }
            StoreError::Checksum { section } => {
                write!(f, "checksum mismatch in {section}")
            }
            StoreError::WalChecksum { record } => {
                write!(f, "WAL record {record} failed its checksum")
            }
            StoreError::Corrupt { section, detail } => {
                write!(f, "corrupt {section}: {detail}")
            }
            StoreError::Unsupported { what } => write!(f, "unsupported: {what}"),
            StoreError::Manifest { detail } => write!(f, "bad manifest: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}
