//! The snapshot container: a versioned, sectioned, checksummed file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [magic  8B = "ELSISNAP"]
//! [version 4B]
//! [n_sections 4B]
//! [header CRC32 4B]              — over the 16 header bytes above
//! n_sections ×:
//!   [tag 4B] [len 8B] [CRC32 4B] [payload len bytes]
//! ```
//!
//! Crash consistency: [`SnapshotWriter::write_file`] writes the entire
//! image to `<path>.tmp`, `fsync`s it, then atomically renames it over
//! `<path>` and `fsync`s the parent directory. A crash at any byte leaves
//! either the complete old file or the complete new file visible at
//! `<path>` — never a torn mixture; a leftover `.tmp` is ignored by
//! readers. The per-section CRCs catch damage from everything rename
//! cannot defend against (partial temp writes read by accident, bit rot,
//! truncation), turning it into a clean [`StoreError`].

use crate::crc::crc32;
use crate::error::StoreError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes every snapshot file starts with.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ELSISNAP";

/// Snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 4;

/// Builds a snapshot image section by section.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one section. Tags may repeat; readers see sections in
    /// write order.
    pub fn add_section(&mut self, tag: u32, payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    /// Serialises the complete file image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            HEADER_LEN
                + 4
                + self
                    .sections
                    .iter()
                    .map(|(_, p)| p.len() + 16)
                    .sum::<usize>(),
        );
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for (tag, payload) in &self.sections {
            // The CRC covers the frame (tag + length) as well as the
            // payload, so a damaged tag or length is caught too.
            let mut crc = crate::crc::Crc32::new();
            crc.update(&tag.to_le_bytes());
            crc.update(&(payload.len() as u64).to_le_bytes());
            crc.update(payload);
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc.finish().to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Streams the file image into any writer — the seam the
    /// fault-injection tests use to crash a save at an arbitrary byte.
    pub fn write_to(&self, w: &mut dyn Write) -> std::io::Result<()> {
        w.write_all(&self.to_bytes())
    }

    /// Durably replaces `path` with this snapshot: write to `<path>.tmp`,
    /// `fsync`, atomic rename, `fsync` the directory.
    pub fn write_file(&self, path: &Path) -> Result<(), StoreError> {
        let tmp = tmp_path(path);
        let image = self.to_bytes();
        let mut f = File::create(&tmp).map_err(|e| StoreError::io("create", &tmp, e))?;
        f.write_all(&image)
            .map_err(|e| StoreError::io("write", &tmp, e))?;
        f.sync_all().map_err(|e| StoreError::io("sync", &tmp, e))?;
        drop(f);
        fs::rename(&tmp, path).map_err(|e| StoreError::io("rename", path, e))?;
        sync_parent_dir(path)?;
        Ok(())
    }
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// `fsync`s the directory containing `path`, making a completed rename
/// durable. Best effort on platforms where directories cannot be synced.
pub fn sync_parent_dir(path: &Path) -> Result<(), StoreError> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = OpenOptions::new().read(true).open(dir) {
            d.sync_all()
                .map_err(|e| StoreError::io("sync_dir", dir, e))?;
        }
    }
    Ok(())
}

/// A parsed, checksum-verified snapshot.
///
/// Owns the raw image and indexes sections as ranges into it, so parsing
/// verifies checksums without copying payloads — restore-path section
/// access is a slice borrow, not a second pass over the file's bytes.
#[derive(Debug)]
pub struct Snapshot {
    buf: Vec<u8>,
    sections: Vec<(u32, core::ops::Range<usize>)>,
}

impl Snapshot {
    /// Parses and verifies a complete snapshot image from a borrowed
    /// buffer (copies it; [`Snapshot::from_vec`] avoids the copy).
    pub fn from_bytes(bytes: &[u8], path: &Path) -> Result<Self, StoreError> {
        Self::from_vec(bytes.to_vec(), path)
    }

    /// Parses and verifies a complete snapshot image, taking ownership of
    /// the buffer.
    pub fn from_vec(buf: Vec<u8>, path: &Path) -> Result<Self, StoreError> {
        let bytes = buf.as_slice();
        let header = bytes.get(..HEADER_LEN).ok_or(StoreError::Truncated {
            section: "snapshot header".to_string(),
            offset: bytes.len(),
        })?;
        if header[..8] != SNAPSHOT_MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&header[..8]);
            return Err(StoreError::BadMagic {
                path: path.to_path_buf(),
                found,
            });
        }
        let version = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if version != SNAPSHOT_VERSION {
            return Err(StoreError::BadVersion {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let n_sections = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        let stored_crc = bytes
            .get(HEADER_LEN..HEADER_LEN + 4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .ok_or(StoreError::Truncated {
                section: "snapshot header".to_string(),
                offset: bytes.len(),
            })?;
        if crc32(header) != stored_crc {
            return Err(StoreError::Checksum {
                section: "snapshot header".to_string(),
            });
        }
        let mut pos = HEADER_LEN + 4;
        let mut sections = Vec::with_capacity(n_sections as usize);
        for i in 0..n_sections {
            let frame = bytes.get(pos..pos + 16).ok_or(StoreError::Truncated {
                section: format!("snapshot section {i} frame"),
                offset: bytes.len(),
            })?;
            let tag = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
            let len = u64::from_le_bytes([
                frame[4], frame[5], frame[6], frame[7], frame[8], frame[9], frame[10], frame[11],
            ]);
            let crc = u32::from_le_bytes([frame[12], frame[13], frame[14], frame[15]]);
            pos += 16;
            let len = usize::try_from(len).map_err(|_| {
                StoreError::corrupt(&format!("snapshot section {i}"), "length exceeds usize")
            })?;
            let payload = bytes
                .get(pos..pos.saturating_add(len))
                .ok_or(StoreError::Truncated {
                    section: format!("snapshot section {i} payload"),
                    offset: bytes.len(),
                })?;
            let mut check = crate::crc::Crc32::new();
            check.update(&frame[..12]);
            check.update(payload);
            if check.finish() != crc {
                return Err(StoreError::Checksum {
                    section: format!("snapshot section {i} (tag {tag:#x})"),
                });
            }
            sections.push((tag, pos..pos + len));
            pos += len;
        }
        if pos != bytes.len() {
            return Err(StoreError::corrupt(
                "snapshot",
                format!("{} trailing bytes after last section", bytes.len() - pos),
            ));
        }
        Ok(Self { buf, sections })
    }

    /// Reads and verifies a snapshot file.
    pub fn read_file(path: &Path) -> Result<Self, StoreError> {
        let mut f = File::open(path).map_err(|e| StoreError::io("open", path, e))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)
            .map_err(|e| StoreError::io("read", path, e))?;
        Self::from_vec(bytes, path)
    }

    /// The first section with `tag`, if present.
    pub fn section(&self, tag: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, r)| &self.buf[r.clone()])
    }

    /// All sections in file order, as `(tag, payload)` pairs.
    pub fn sections(&self) -> impl Iterator<Item = (u32, &[u8])> {
        self.sections
            .iter()
            .map(|(t, r)| (*t, &self.buf[r.clone()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> SnapshotWriter {
        let mut w = SnapshotWriter::new();
        w.add_section(0x10, vec![1, 2, 3, 4, 5]);
        w.add_section(0x20, Vec::new());
        w.add_section(0x30, (0..=255u8).collect());
        w
    }

    #[test]
    fn sections_round_trip() {
        let bytes = sample().to_bytes();
        let snap = Snapshot::from_bytes(&bytes, &PathBuf::from("mem")).unwrap();
        assert_eq!(snap.section(0x10), Some(&[1u8, 2, 3, 4, 5][..]));
        assert_eq!(snap.section(0x20), Some(&[][..]));
        assert_eq!(snap.section(0x30).map(|s| s.len()), Some(256));
        assert_eq!(snap.section(0x99), None);
    }

    #[test]
    fn every_truncation_point_is_a_clean_error() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let res = Snapshot::from_bytes(&bytes[..cut], &PathBuf::from("mem"));
            assert!(res.is_err(), "prefix of {cut} bytes parsed");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let clean = sample().to_bytes();
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x01;
            let res = Snapshot::from_bytes(&bytes, &PathBuf::from("mem"));
            // A flip in a length field may masquerade as truncation; a
            // flip in magic as BadMagic; anywhere else as a checksum
            // mismatch. It must never parse as clean data.
            assert!(res.is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn write_file_is_atomic_replace() {
        let dir = std::env::temp_dir().join(format!("elsi_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        sample().write_file(&path).unwrap();
        let first = Snapshot::read_file(&path).unwrap();
        assert_eq!(first.section(0x10), Some(&[1u8, 2, 3, 4, 5][..]));
        // Overwrite with different content; the temp file must be gone.
        let mut w2 = SnapshotWriter::new();
        w2.add_section(0x11, vec![9]);
        w2.write_file(&path).unwrap();
        let second = Snapshot::read_file(&path).unwrap();
        assert_eq!(second.section(0x11), Some(&[9u8][..]));
        assert_eq!(second.section(0x10), None);
        assert!(!tmp_path(&path).exists(), "temp file left behind");
        std::fs::remove_dir_all(&dir).ok();
    }
}
