//! The write-ahead log: length-framed, per-record-checksummed appends.
//!
//! Layout (little-endian):
//!
//! ```text
//! [magic 8B = "ELSIWAL\0"] [version 4B] [header CRC32 4B]
//! then per record: [len 4B] [payload CRC32 4B] [payload len bytes]
//! ```
//!
//! Records are opaque byte payloads — the update-batch encoding lives
//! with the update types, not here. The reader distinguishes two kinds of
//! damage:
//!
//! * **Torn tail** — the file ends mid-frame or mid-payload (a crash
//!   during an append). Every complete record before the tear is
//!   returned; [`WalReplay::torn`] reports the tear and
//!   [`WalReplay::valid_len`] says where the intact prefix ends so the
//!   writer can truncate it away before appending again.
//! * **Checksum mismatch** — a *complete* record whose payload fails its
//!   CRC32 (in-place damage). This is not recoverable-by-prefix at the
//!   tail's discretion: it surfaces as [`StoreError::WalChecksum`] and
//!   the record is never handed to replay.
//!
//! Replay idempotence is the caller's contract: each record is one update
//! batch, and replaying batches in order through the processor's
//! `apply_batch` reproduces the exact post-append state (the batch path
//! is proptest-pinned bit-identical to sequential application).

use crate::crc::crc32;
use crate::error::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes every WAL file starts with.
pub const WAL_MAGIC: [u8; 8] = *b"ELSIWAL\0";

/// WAL format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;

/// Size of the WAL file header in bytes.
pub const WAL_HEADER_LEN: u64 = 16;

/// Per-record frame overhead in bytes (`len` + `crc`).
pub const WAL_FRAME_LEN: u64 = 8;

/// The result of scanning a WAL: every verified record, plus where (and
/// whether) the intact prefix ends early.
#[derive(Debug)]
pub struct WalReplay {
    /// Verified record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// File offset at which the intact prefix ends (end of the last
    /// complete, verified record — or of the header when none exist).
    pub valid_len: u64,
    /// Whether bytes after `valid_len` were a torn (incomplete) record.
    pub torn: bool,
}

/// Serialises one record frame (length, checksum, payload).
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + WAL_FRAME_LEN as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn wal_header() -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    let crc = crc32(&h[..12]);
    h[12..16].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Scans and verifies a WAL file (see the module docs for the damage
/// taxonomy). Never panics on any input.
pub fn read_wal(path: &Path) -> Result<WalReplay, StoreError> {
    let mut f = File::open(path).map_err(|e| StoreError::io("open", path, e))?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)
        .map_err(|e| StoreError::io("read", path, e))?;
    read_wal_bytes(&bytes, path)
}

/// [`read_wal`] over an in-memory image (the corruption-matrix tests
/// drive this directly).
pub fn read_wal_bytes(bytes: &[u8], path: &Path) -> Result<WalReplay, StoreError> {
    let header = bytes
        .get(..WAL_HEADER_LEN as usize)
        .ok_or(StoreError::Truncated {
            section: "WAL header".to_string(),
            offset: bytes.len(),
        })?;
    if header[..8] != WAL_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&header[..8]);
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
            found,
        });
    }
    let version = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if version != WAL_VERSION {
        return Err(StoreError::BadVersion {
            found: version,
            expected: WAL_VERSION,
        });
    }
    let stored = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    if crc32(&header[..12]) != stored {
        return Err(StoreError::Checksum {
            section: "WAL header".to_string(),
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    loop {
        if pos == bytes.len() {
            return Ok(WalReplay {
                records,
                valid_len: pos as u64,
                torn: false,
            });
        }
        let frame = match bytes.get(pos..pos + WAL_FRAME_LEN as usize) {
            Some(f) => f,
            None => {
                // Mid-frame tear: the crash hit during an append.
                return Ok(WalReplay {
                    records,
                    valid_len: pos as u64,
                    torn: true,
                });
            }
        };
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        let start = pos + WAL_FRAME_LEN as usize;
        let payload = match start.checked_add(len).and_then(|end| bytes.get(start..end)) {
            Some(p) => p,
            None => {
                // Mid-payload tear (or a length field damaged into
                // claiming more bytes than exist — indistinguishable
                // from a tear, and prefix recovery drops it either way).
                return Ok(WalReplay {
                    records,
                    valid_len: pos as u64,
                    torn: true,
                });
            }
        };
        if crc32(payload) != crc {
            return Err(StoreError::WalChecksum {
                record: records.len(),
            });
        }
        records.push(payload.to_vec());
        pos = start + len;
    }
}

/// Appender over a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    records: u64,
}

impl WalWriter {
    /// Creates a fresh, empty WAL at `path` (truncating any previous
    /// file) and makes its header durable.
    pub fn create(path: &Path) -> Result<Self, StoreError> {
        let mut file = File::create(path).map_err(|e| StoreError::io("create", path, e))?;
        file.write_all(&wal_header())
            .map_err(|e| StoreError::io("write", path, e))?;
        file.sync_all()
            .map_err(|e| StoreError::io("sync", path, e))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            records: 0,
        })
    }

    /// Reopens an existing WAL for appending after a scan: truncates the
    /// file to the intact prefix `replay` found (dropping a torn tail)
    /// and positions at its end.
    pub fn open_append(path: &Path, replay: &WalReplay) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io("open", path, e))?;
        file.set_len(replay.valid_len)
            .map_err(|e| StoreError::io("truncate", path, e))?;
        let mut w = Self {
            file,
            path: path.to_path_buf(),
            records: replay.records.len() as u64,
        };
        w.file
            .seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io("seek", &w.path, e))?;
        Ok(w)
    }

    /// Appends one record (framed and checksummed) and flushes it to the
    /// OS. Call [`WalWriter::sync`] to force it to stable storage.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let frame = frame_record(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io("append", &self.path, e))?;
        self.file
            .flush()
            .map_err(|e| StoreError::io("flush", &self.path, e))?;
        self.records += 1;
        Ok(())
    }

    /// Forces appended records to stable storage (`fdatasync`).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .sync_data()
            .map_err(|e| StoreError::io("sync", &self.path, e))
    }

    /// Number of records this writer believes the file holds.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("elsi_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("basic.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"first").unwrap();
        w.append(b"").unwrap();
        w.append(&[0xFFu8; 1000]).unwrap();
        w.sync().unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(!replay.torn);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0], b"first");
        assert_eq!(replay.records[1], b"");
        assert_eq!(replay.records[2], vec![0xFFu8; 1000]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_recovers_the_prefix_and_truncates() {
        let path = tmp("torn.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"keep me").unwrap();
        w.append(b"torn away").unwrap();
        drop(w);
        // Crash mid-append: chop 3 bytes off the final record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.torn);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0], b"keep me");
        // Reopen truncates the tear; a fresh append then replays cleanly.
        let mut w = WalWriter::open_append(&path, &replay).unwrap();
        assert_eq!(w.records(), 1);
        w.append(b"after recovery").unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(!replay.torn);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1], b"after recovery");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_error() {
        let path = tmp("flip.wal");
        let mut w = WalWriter::create(&path).unwrap();
        w.append(b"record zero").unwrap();
        w.append(b"record one").unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside record 0's payload.
        let idx = WAL_HEADER_LEN as usize + WAL_FRAME_LEN as usize + 2;
        bytes[idx] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match read_wal(&path) {
            Err(StoreError::WalChecksum { record: 0 }) => {}
            other => panic!("expected WalChecksum for record 0, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    /// Builds the in-memory image of a small WAL plus the byte ranges of
    /// each record's frame and payload.
    fn matrix_image() -> (Vec<u8>, Vec<(usize, usize, usize)>) {
        let payloads: [&[u8]; 4] = [b"alpha", b"", b"gamma-gamma", &[0xA5; 37]];
        let mut image = wal_header().to_vec();
        let mut spans = Vec::new();
        for p in payloads {
            let start = image.len();
            image.extend_from_slice(&frame_record(p));
            spans.push((start, start + WAL_FRAME_LEN as usize, image.len()));
        }
        (image, spans)
    }

    /// The records of `matrix_image()`, for prefix comparison.
    fn matrix_payloads() -> Vec<Vec<u8>> {
        vec![
            b"alpha".to_vec(),
            Vec::new(),
            b"gamma-gamma".to_vec(),
            vec![0xA5; 37],
        ]
    }

    #[test]
    fn truncation_matrix_recovers_the_exact_prefix_at_every_offset() {
        let (image, spans) = matrix_image();
        let want = matrix_payloads();
        let path = PathBuf::from("matrix.wal");
        for cut in 0..=image.len() {
            let result = read_wal_bytes(&image[..cut], &path);
            if cut < WAL_HEADER_LEN as usize {
                // Not even a header: clean truncation error, by variant.
                match result {
                    Err(StoreError::Truncated { .. }) => {}
                    other => panic!("cut {cut}: expected Truncated, got {other:?}"),
                }
                continue;
            }
            let replay = match result {
                Ok(r) => r,
                Err(e) => panic!("cut {cut}: prefix recovery must not fail, got {e:?}"),
            };
            // The intact prefix is exactly the records that end at or
            // before the cut; everything else is a reported tear.
            let complete = spans.iter().take_while(|&&(_, _, end)| end <= cut).count();
            assert_eq!(replay.records, want[..complete], "cut {cut}");
            let boundary = spans
                .get(complete.wrapping_sub(1))
                .map_or(WAL_HEADER_LEN, |&(_, _, end)| end as u64);
            assert_eq!(replay.valid_len, boundary, "cut {cut}");
            assert_eq!(replay.torn, cut as u64 != boundary, "cut {cut}");
        }
    }

    #[test]
    fn bit_flip_matrix_never_panics_and_never_yields_a_corrupt_record() {
        let (image, spans) = matrix_image();
        let want = matrix_payloads();
        let path = PathBuf::from("matrix.wal");
        let record_of = |pos: usize| spans.iter().position(|&(s, _, e)| pos >= s && pos < e);
        for pos in 0..image.len() {
            for bit in 0..8 {
                let mut bytes = image.clone();
                bytes[pos] ^= 1 << bit;
                let result = read_wal_bytes(&bytes, &path);
                match pos {
                    0..=7 => match result {
                        Err(StoreError::BadMagic { .. }) => {}
                        other => panic!("flip {pos}.{bit}: expected BadMagic, got {other:?}"),
                    },
                    8..=11 => match result {
                        Err(StoreError::BadVersion { .. }) => {}
                        other => panic!("flip {pos}.{bit}: expected BadVersion, got {other:?}"),
                    },
                    12..=15 => match result {
                        Err(StoreError::Checksum { .. }) => {}
                        other => panic!("flip {pos}.{bit}: expected Checksum, got {other:?}"),
                    },
                    _ => {
                        let rec = record_of(pos).expect("pos inside a record span");
                        let (start, payload_at, _) = spans[rec];
                        let in_len_field = pos < start + 4;
                        match result {
                            // Damage inside record `rec` must surface as a
                            // checksum rejection of exactly that record…
                            Err(StoreError::WalChecksum { record }) => {
                                assert_eq!(record, rec, "flip {pos}.{bit}");
                            }
                            // …except a damaged length field, which can
                            // claim more bytes than the file holds — that
                            // is indistinguishable from a torn append and
                            // recovers the prefix before the damage.
                            Ok(replay) if in_len_field => {
                                assert!(replay.torn, "flip {pos}.{bit}");
                                assert_eq!(replay.records, want[..rec], "flip {pos}.{bit}");
                            }
                            other => panic!(
                                "flip {pos}.{bit} (record {rec}, payload_at {payload_at}): \
                                 unexpected outcome {other:?}"
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn missing_or_foreign_header_is_rejected() {
        let path = tmp("hdr.wal");
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::Truncated { .. })));
        std::fs::write(&path, b"NOTAWAL!padpadpadpad").unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::BadMagic { .. })));
        std::fs::remove_file(&path).ok();
    }
}
