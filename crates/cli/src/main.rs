//! The `elsi` command-line binary; see [`elsi_cli`] for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match elsi_cli::parse_args(&args).and_then(elsi_cli::run) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
