//! # elsi-cli
//!
//! A small command-line front end over the ELSI stack, the artifact a
//! downstream user would actually run:
//!
//! ```text
//! elsi generate <dataset> <n> <out.csv> [--seed S]
//! elsi inspect <in.csv>
//! elsi build <in.csv> [--index zm|ml|rsmi|lisa|flood] [--method rs|sp|cl|mr|rl|og|pwl|elsi]
//! elsi query <in.csv> --point X,Y | --window LOX,LOY,HIX,HIY | --knn X,Y,K
//! elsi save <in.csv> <dir> [--shards RxC] [--router grid|learned] [--seed S]
//! elsi load <dir>
//! ```
//!
//! Sharded serving (`--shards RxC`) accepts `--router grid|learned` to
//! pick the shard-boundary policy: uniform grid cells, or equi-mass
//! quantile cuts learned from the data's empirical CDFs (`elsi-serve`).
//!
//! Durability (`DESIGN.md` §14): `save` persists a ZM sharded deployment
//! into a serving directory, `load` recovers one and reports what came
//! back, and `--persist <dir>` on `query`/`ingest` serves from the
//! directory when it exists (crash recovery: snapshots + journaled WAL
//! tails) or builds from the CSV and persists on first use. The persisted
//! paths are ZM-only — that is the index kind with an exact state codec,
//! so recovery decodes shard state instead of retraining models.
//!
//! Command logic lives here so it is unit-testable; `main.rs` only parses
//! `std::env::args` and prints.

#![warn(missing_docs)]
#![warn(clippy::all)]

use elsi::{DeltaOverlay, Elsi, ElsiConfig, Method, RebuildFn, RebuildPolicy, UpdateProcessor};
use elsi_data::{dist_from_uniform, io, stream, Dataset};
use elsi_indices::{
    FloodConfig, FloodIndex, LisaConfig, LisaIndex, MlConfig, MlIndex, ModelBuilder, PwlBuilder,
    RsmiConfig, RsmiIndex, SpatialIndex, ZmConfig, ZmIndex,
};
use elsi_serve::{
    read_manifest, zm_codec, GridRouter, LearnedRouter, Router, ShardedConfig, ShardedIndex,
    MANIFEST_NAME,
};
use elsi_spatial::{KeyMapper, MappedData, MortonMapper, Point, Rect};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a named data set to CSV.
    Generate {
        /// Which catalog data set.
        dataset: Dataset,
        /// Number of points.
        n: usize,
        /// Output path.
        out: String,
        /// Generator seed.
        seed: u64,
    },
    /// Print statistics of a CSV point set.
    Inspect {
        /// Input path.
        input: String,
    },
    /// Build an index and report build/query costs.
    Build {
        /// Input path.
        input: String,
        /// Base index kind.
        index: IndexChoice,
        /// Building method.
        method: MethodChoice,
    },
    /// Ingest a churn update stream in batches and report throughput.
    Ingest {
        /// Input path (the base point set).
        input: String,
        /// Base index kind.
        index: IndexChoice,
        /// Number of stream updates to apply.
        updates: usize,
        /// Batch size (`0` = the whole stream in one batch).
        batch: usize,
        /// Route through an R×C sharded deployment (`--shards RxC`).
        shards: Option<(usize, usize)>,
        /// Shard-boundary policy for `--shards` (`--router grid|learned`).
        router: RouterChoice,
        /// Serve from (and checkpoint into) a durable serving directory
        /// (`--persist <dir>`; ZM only).
        persist: Option<String>,
        /// Stream seed.
        seed: u64,
    },
    /// Answer one query over a CSV point set.
    Query {
        /// Input path.
        input: String,
        /// Base index kind.
        index: IndexChoice,
        /// The query.
        query: QuerySpec,
        /// Serve through an R×C sharded deployment instead of a monolith
        /// (`--shards RxC`; see `elsi-serve`).
        shards: Option<(usize, usize)>,
        /// Shard-boundary policy for `--shards` (`--router grid|learned`).
        router: RouterChoice,
        /// Serve from a durable serving directory, building and saving it
        /// on first use (`--persist <dir>`; ZM only).
        persist: Option<String>,
    },
    /// Build a ZM sharded deployment and persist it into a directory.
    Save {
        /// Input path (the base point set).
        input: String,
        /// Serving directory to write.
        dir: String,
        /// Deployment shape (`--shards RxC`).
        shards: (usize, usize),
        /// Shard-boundary policy (`--router grid|learned`).
        router: RouterChoice,
        /// Deployment root seed.
        seed: u64,
    },
    /// Recover a persisted deployment and report what came back.
    Load {
        /// Serving directory to read.
        dir: String,
    },
}

/// Base index selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexChoice {
    /// ZM: the Z-order model index (the workhorse).
    Zm,
    /// ML-Index: iDistance keys over pivot distances.
    Ml,
    /// RSMI: the recursive spatial model index.
    Rsmi,
    /// LISA: learned mapped-cell shards.
    Lisa,
    /// Flood: a query-aware learned multi-dimensional index.
    Flood,
}

impl IndexChoice {
    fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "zm" => Ok(Self::Zm),
            "ml" => Ok(Self::Ml),
            "rsmi" => Ok(Self::Rsmi),
            "lisa" => Ok(Self::Lisa),
            "flood" => Ok(Self::Flood),
            other => Err(format!(
                "unknown index {other:?} (expected zm|ml|rsmi|lisa|flood)"
            )),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Self::Zm => "ZM",
            Self::Ml => "ML",
            Self::Rsmi => "RSMI",
            Self::Lisa => "LISA",
            Self::Flood => "Flood",
        }
    }
}

/// Shard-routing policy selection (`--router`, only with `--shards`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterChoice {
    /// Uniform R×C grid cells (`elsi_serve::GridRouter`).
    #[default]
    Grid,
    /// Equi-mass quantile cuts learned from the data's empirical CDFs
    /// (`elsi_serve::LearnedRouter`) — balances shard load under skew.
    Learned,
}

impl RouterChoice {
    fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "grid" => Ok(Self::Grid),
            "learned" => Ok(Self::Learned),
            other => Err(format!("unknown router {other:?} (expected grid|learned)")),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Self::Grid => "grid",
            Self::Learned => "learned",
        }
    }
}

/// Building-method selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodChoice {
    /// A fixed ELSI pool method (or OG / RSP).
    Fixed(Method),
    /// The ε-bounded piecewise-linear family.
    Pwl,
    /// The learned selector (requires a quick preparation pass).
    Selector,
}

impl MethodChoice {
    fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "sp" => Ok(Self::Fixed(Method::Sp)),
            "rsp" => Ok(Self::Fixed(Method::Rsp)),
            "cl" => Ok(Self::Fixed(Method::Cl)),
            "mr" => Ok(Self::Fixed(Method::Mr)),
            "rs" => Ok(Self::Fixed(Method::Rs)),
            "rl" => Ok(Self::Fixed(Method::Rl)),
            "og" => Ok(Self::Fixed(Method::Og)),
            "pwl" => Ok(Self::Pwl),
            "elsi" => Ok(Self::Selector),
            other => Err(format!(
                "unknown method {other:?} (expected sp|rsp|cl|mr|rs|rl|og|pwl|elsi)"
            )),
        }
    }
}

/// A single query.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// Exact point lookup.
    Point(Point),
    /// Window query.
    Window(Rect),
    /// k-nearest-neighbour query.
    Knn(Point, usize),
}

fn parse_dataset(s: &str) -> Result<Dataset, String> {
    Dataset::all()
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| {
            let names: Vec<&str> = Dataset::all().iter().map(|d| d.name()).collect();
            format!("unknown dataset {s:?} (expected one of {names:?})")
        })
}

fn parse_floats(s: &str, want: usize) -> Result<Vec<f64>, String> {
    let vals: Result<Vec<f64>, _> = s.split(',').map(|v| v.trim().parse::<f64>()).collect();
    let vals = vals.map_err(|e| format!("bad number in {s:?}: {e}"))?;
    if vals.len() != want {
        return Err(format!(
            "expected {want} comma-separated numbers, got {}",
            vals.len()
        ));
    }
    Ok(vals)
}

fn parse_shards_spec(spec: &str) -> Result<(usize, usize), String> {
    let (r, c) = spec
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("--shards: bad grid {spec:?} (want RxC)"))?;
    let parse = |v: &str, what: &str| {
        v.trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--shards: bad {what} in {spec:?}"))
    };
    Ok((parse(r, "rows")?, parse(c, "cols")?))
}

/// Parses command-line arguments (without the program name).
// lint:serving_root
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?;
    match cmd.as_str() {
        "generate" => {
            let dataset = parse_dataset(it.next().ok_or("generate: missing dataset")?)?;
            let n: usize = it
                .next()
                .ok_or("generate: missing n")?
                .parse()
                .map_err(|e| format!("bad n: {e}"))?;
            let out = it.next().ok_or("generate: missing output path")?.clone();
            let mut seed = 42u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => {
                        seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|e| format!("bad seed: {e}"))?;
                    }
                    other => return Err(format!("generate: unknown flag {other:?}")),
                }
            }
            Ok(Command::Generate {
                dataset,
                n,
                out,
                seed,
            })
        }
        "inspect" => {
            let input = it.next().ok_or("inspect: missing input path")?.clone();
            Ok(Command::Inspect { input })
        }
        "build" => {
            let input = it.next().ok_or("build: missing input path")?.clone();
            let mut index = IndexChoice::Zm;
            let mut method = MethodChoice::Fixed(Method::Rs);
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--index" => {
                        index = IndexChoice::parse(it.next().ok_or("--index needs a value")?)?
                    }
                    "--method" => {
                        method = MethodChoice::parse(it.next().ok_or("--method needs a value")?)?
                    }
                    other => return Err(format!("build: unknown flag {other:?}")),
                }
            }
            Ok(Command::Build {
                input,
                index,
                method,
            })
        }
        "ingest" => {
            let input = it.next().ok_or("ingest: missing input path")?.clone();
            let mut index = IndexChoice::Zm;
            let mut updates = 1000usize;
            let mut batch = 0usize;
            let mut shards = None;
            let mut router = None;
            let mut persist = None;
            let mut seed = 7u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--index" => {
                        index = IndexChoice::parse(it.next().ok_or("--index needs a value")?)?
                    }
                    "--updates" => {
                        updates = it
                            .next()
                            .ok_or("--updates needs a count")?
                            .parse()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or("--updates: want a positive count")?;
                    }
                    "--batch" => {
                        batch = it
                            .next()
                            .ok_or("--batch needs a size (0 = one batch)")?
                            .parse()
                            .map_err(|e| format!("bad batch size: {e}"))?;
                    }
                    "--shards" => {
                        let spec = it.next().ok_or("--shards needs RxC (e.g. 2x2)")?;
                        shards = Some(parse_shards_spec(spec)?);
                    }
                    "--router" => {
                        router = Some(RouterChoice::parse(
                            it.next().ok_or("--router needs grid|learned")?,
                        )?);
                    }
                    "--persist" => {
                        persist = Some(it.next().ok_or("--persist needs a directory")?.clone());
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|e| format!("bad seed: {e}"))?;
                    }
                    other => return Err(format!("ingest: unknown flag {other:?}")),
                }
            }
            if router.is_some() && shards.is_none() && persist.is_none() {
                return Err("ingest: --router requires --shards or --persist".into());
            }
            Ok(Command::Ingest {
                input,
                index,
                updates,
                batch,
                shards,
                router: router.unwrap_or_default(),
                persist,
                seed,
            })
        }
        "query" => {
            let input = it.next().ok_or("query: missing input path")?.clone();
            let mut index = IndexChoice::Zm;
            let mut query = None;
            let mut shards = None;
            let mut router = None;
            let mut persist = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--index" => {
                        index = IndexChoice::parse(it.next().ok_or("--index needs a value")?)?
                    }
                    "--shards" => {
                        let spec = it.next().ok_or("--shards needs RxC (e.g. 2x2)")?;
                        shards = Some(parse_shards_spec(spec)?);
                    }
                    "--router" => {
                        router = Some(RouterChoice::parse(
                            it.next().ok_or("--router needs grid|learned")?,
                        )?);
                    }
                    "--point" => {
                        let v = parse_floats(it.next().ok_or("--point needs X,Y")?, 2)?;
                        query = Some(QuerySpec::Point(Point::at(v[0], v[1])));
                    }
                    "--window" => {
                        let v =
                            parse_floats(it.next().ok_or("--window needs LOX,LOY,HIX,HIY")?, 4)?;
                        query = Some(QuerySpec::Window(Rect::new(v[0], v[1], v[2], v[3])));
                    }
                    "--knn" => {
                        let v = parse_floats(it.next().ok_or("--knn needs X,Y,K")?, 3)?;
                        if v[2] < 1.0 || v[2].fract() != 0.0 {
                            return Err("--knn: K must be a positive integer".into());
                        }
                        query = Some(QuerySpec::Knn(Point::at(v[0], v[1]), v[2] as usize));
                    }
                    "--persist" => {
                        persist = Some(it.next().ok_or("--persist needs a directory")?.clone());
                    }
                    other => return Err(format!("query: unknown flag {other:?}")),
                }
            }
            let query = query.ok_or("query: one of --point/--window/--knn is required")?;
            if router.is_some() && shards.is_none() && persist.is_none() {
                return Err("query: --router requires --shards or --persist".into());
            }
            Ok(Command::Query {
                input,
                index,
                query,
                shards,
                router: router.unwrap_or_default(),
                persist,
            })
        }
        "save" => {
            let input = it.next().ok_or("save: missing input path")?.clone();
            let dir = it.next().ok_or("save: missing serving directory")?.clone();
            let mut shards = (2usize, 2usize);
            let mut router = RouterChoice::default();
            let mut seed = 42u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--shards" => {
                        let spec = it.next().ok_or("--shards needs RxC (e.g. 2x2)")?;
                        shards = parse_shards_spec(spec)?;
                    }
                    "--router" => {
                        router =
                            RouterChoice::parse(it.next().ok_or("--router needs grid|learned")?)?;
                    }
                    "--seed" => {
                        seed = it
                            .next()
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|e| format!("bad seed: {e}"))?;
                    }
                    other => return Err(format!("save: unknown flag {other:?}")),
                }
            }
            Ok(Command::Save {
                input,
                dir,
                shards,
                router,
                seed,
            })
        }
        "load" => {
            let dir = it.next().ok_or("load: missing serving directory")?.clone();
            Ok(Command::Load { dir })
        }
        "help" | "--help" | "-h" => Err(usage()),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  \
     elsi generate <dataset> <n> <out.csv> [--seed S]\n  \
     elsi inspect <in.csv>\n  \
     elsi build <in.csv> [--index zm|ml|rsmi|lisa|flood] [--method sp|rsp|cl|mr|rs|rl|og|pwl|elsi]\n  \
     elsi ingest <in.csv> [--index ...] [--updates N] [--batch SIZE] [--shards RxC] [--router grid|learned] [--persist DIR] [--seed S]\n  \
     elsi query <in.csv> [--index ...] [--shards RxC] [--router grid|learned] [--persist DIR] --point X,Y | --window LOX,LOY,HIX,HIY | --knn X,Y,K\n  \
     elsi save <in.csv> <dir> [--shards RxC] [--router grid|learned] [--seed S]\n  \
     elsi load <dir>"
        .to_string()
}

fn load_points(path: &str) -> Result<Vec<Point>, String> {
    let pts = io::read_points_csv(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    if pts.is_empty() {
        return Err(format!("{path}: no points"));
    }
    // Normalise if the data is outside the unit square (e.g. lon/lat).
    let bbox = Rect::mbr_of(&pts);
    if bbox.lo_x < 0.0 || bbox.lo_y < 0.0 || bbox.hi_x > 1.0 || bbox.hi_y > 1.0 {
        let (norm, from) = io::normalize_to_unit(&pts);
        eprintln!("note: normalised {path} from {from:?} into the unit square");
        Ok(norm)
    } else {
        Ok(pts)
    }
}

/// All workspace indices are `Send + Sync` (PR 1), so the CLI's boxes are
/// too — which lets the same `build_kind` serve as a shard builder.
type BoxedIndex = Box<dyn SpatialIndex + Send + Sync>;

fn build_index(
    pts: Vec<Point>,
    index: IndexChoice,
    method: MethodChoice,
) -> Result<BoxedIndex, String> {
    let n = pts.len();
    let cfg = ElsiConfig::scaled_for(n);
    let builder: Box<dyn ModelBuilder> = match method {
        MethodChoice::Pwl => Box::new(PwlBuilder::default()),
        MethodChoice::Fixed(m) => {
            if index == IndexChoice::Lisa && m.synthesises_points() {
                return Err(format!(
                    "method {m} is inapplicable to LISA (synthesises points)"
                ));
            }
            let elsi = Elsi::new(cfg.clone());
            Box::new(elsi.fixed_builder(m))
        }
        MethodChoice::Selector => {
            let mut elsi = Elsi::new(cfg.clone());
            eprintln!("preparing the method scorer (one-off)…");
            elsi.prepare_scorer(&[(n / 20).max(200), n], &[1, 4, 12], 7);
            let b = if index == IndexChoice::Lisa {
                elsi.builder().for_lisa()
            } else {
                elsi.builder()
            };
            return Ok(build_kind(pts, index, &b));
        }
    };
    Ok(build_kind(pts, index, builder.as_ref()))
}

fn build_kind(pts: Vec<Point>, index: IndexChoice, b: &dyn ModelBuilder) -> BoxedIndex {
    let n = pts.len().max(1);
    match index {
        IndexChoice::Zm => Box::new(ZmIndex::build(
            pts,
            &ZmConfig {
                fanout: (n / 12_500).clamp(4, 16),
            },
            b,
        )),
        IndexChoice::Ml => Box::new(MlIndex::build(pts, &MlConfig::default(), b)),
        IndexChoice::Rsmi => Box::new(RsmiIndex::build(pts, &RsmiConfig::default(), b)),
        IndexChoice::Lisa => Box::new(LisaIndex::build(
            pts,
            &LisaConfig {
                shard_size: (n / 200).clamp(100, 1000),
                ..LisaConfig::default()
            },
            b,
        )),
        IndexChoice::Flood => Box::new(FloodIndex::build(
            pts,
            &FloodConfig {
                columns: (n / 2_000).clamp(4, 64),
            },
            b,
        )),
    }
}

/// An R×C sharded deployment over the CLI's boxed indices: every shard is
/// a full ELSI update lifecycle around one `build_kind` index (queries in
/// the CLI are one-shot, so the rebuild policy is `Never`). The routing
/// policy is boxed so grid and learned deployments share one type.
fn build_sharded(
    pts: Vec<Point>,
    index: IndexChoice,
    rows: usize,
    cols: usize,
    router: RouterChoice,
) -> ShardedIndex<BoxedIndex, Box<dyn Router>> {
    let routing: Box<dyn Router> = match router {
        RouterChoice::Grid => Box::new(GridRouter::new(rows, cols)),
        RouterChoice::Learned => Box::new(LearnedRouter::fit_sampled(&pts, rows, cols)),
    };
    let elsi = Elsi::new(ElsiConfig::scaled_for(pts.len()));
    let builder = elsi.fixed_builder(Method::Rs);
    let builder = Arc::new(if index == IndexChoice::Lisa {
        builder.for_lisa()
    } else {
        builder
    });
    ShardedIndex::build(
        pts,
        routing,
        &ShardedConfig::grid(rows, cols),
        move |_ctx, shard_pts| build_kind(shard_pts, index, builder.as_ref()),
        |_shard| RebuildPolicy::Never,
    )
}

/// The durable serving deployment behind `save`/`load`/`--persist`: ZM
/// shards (the index kind with an exact state codec, so recovery decodes
/// rather than retrains) under either persistable router, behind one enum
/// so the commands share code (`elsi-serve`'s persistence is generic over
/// the concrete router type).
enum ZmDeployment {
    /// Uniform grid routing.
    Grid(ShardedIndex<ZmIndex, GridRouter>),
    /// Learned equi-mass routing.
    Learned(ShardedIndex<ZmIndex, LearnedRouter>),
}

impl ZmDeployment {
    fn build(pts: Vec<Point>, cfg: &ShardedConfig, router: RouterChoice, elsi: &Elsi) -> Self {
        match router {
            RouterChoice::Grid => Self::Grid(ShardedIndex::zm(pts, cfg, elsi)),
            RouterChoice::Learned => Self::Learned(ShardedIndex::zm_learned(pts, cfg, elsi)),
        }
    }

    /// Recovers from a serving directory, dispatching on the manifest's
    /// router kind.
    fn open(dir: &Path, elsi: &Elsi) -> Result<Self, String> {
        let manifest = read_manifest(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        match manifest.router_kind.as_str() {
            "grid" => Ok(Self::Grid(
                ShardedIndex::open_zm(dir, elsi).map_err(|e| e.to_string())?,
            )),
            "learned" => Ok(Self::Learned(
                ShardedIndex::open_zm_learned(dir, elsi).map_err(|e| e.to_string())?,
            )),
            other => Err(format!("{}: unknown router kind {other:?}", dir.display())),
        }
    }

    /// Persists the next generation and rotates the shard journals.
    fn save(&mut self, dir: &Path) -> Result<u64, String> {
        match self {
            Self::Grid(s) => s.save(dir, &zm_codec()),
            Self::Learned(s) => s.save(dir, &zm_codec()),
        }
        .map_err(|e| e.to_string())
    }

    fn as_index(&self) -> &dyn SpatialIndex {
        match self {
            Self::Grid(s) => s,
            Self::Learned(s) => s,
        }
    }

    fn par_apply_updates(&mut self, updates: &[stream::Update]) -> usize {
        match self {
            Self::Grid(s) => s.par_apply_updates(updates),
            Self::Learned(s) => s.par_apply_updates(updates),
        }
    }

    fn num_shards(&self) -> usize {
        match self {
            Self::Grid(s) => s.num_shards(),
            Self::Learned(s) => s.num_shards(),
        }
    }
}

/// Renders one query answer (shared by the monolith and sharded paths).
fn render_query(idx: &dyn SpatialIndex, query: QuerySpec, out: &mut String) {
    match query {
        QuerySpec::Point(p) => match idx.point_query(p) {
            Some(found) => {
                let _ = writeln!(out, "found: {found}");
            }
            None => {
                let _ = writeln!(out, "not found");
            }
        },
        QuerySpec::Window(w) => {
            let hits = idx.window_query(&w);
            let _ = writeln!(out, "{} points in window", hits.len());
            for p in hits.iter().take(20) {
                let _ = writeln!(out, "  {p}");
            }
            if hits.len() > 20 {
                let _ = writeln!(out, "  … and {} more", hits.len() - 20);
            }
        }
        QuerySpec::Knn(q, k) => {
            let hits = idx.knn_query(q, k);
            let _ = writeln!(
                out,
                "{} nearest neighbours of ({}, {}):",
                hits.len(),
                q.x,
                q.y
            );
            for p in &hits {
                let _ = writeln!(out, "  {p}  dist {:.6}", q.dist(p));
            }
        }
    }
}

/// Executes a command, returning the text to print.
// lint:serving_root
pub fn run(cmd: Command) -> Result<String, String> {
    let mut out = String::new();
    match cmd {
        Command::Generate {
            dataset,
            n,
            out: path,
            seed,
        } => {
            let pts = dataset.generate(n, seed);
            io::write_points_csv(Path::new(&path), &pts).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "wrote {n} {dataset} points to {path}");
        }
        Command::Inspect { input } => {
            let pts = load_points(&input)?;
            let bbox = Rect::mbr_of(&pts);
            let mut keys = MortonMapper.keys(&pts);
            keys.sort_unstable_by(|a, b| a.total_cmp(b));
            let dist_u = dist_from_uniform(&keys);
            let _ = writeln!(out, "points:              {}", pts.len());
            let _ = writeln!(
                out,
                "bounding box:        [{:.6}, {:.6}] x [{:.6}, {:.6}]",
                bbox.lo_x, bbox.hi_x, bbox.lo_y, bbox.hi_y
            );
            let _ = writeln!(
                out,
                "dist(D_U, D):        {dist_u:.4} (Z-order keys vs uniform)"
            );
            let _ = writeln!(
                out,
                "suggested method:    {}",
                if dist_u < 0.1 {
                    "SP (near-uniform)"
                } else {
                    "RS (skewed)"
                }
            );
        }
        Command::Build {
            input,
            index,
            method,
        } => {
            let pts = load_points(&input)?;
            let n = pts.len();
            let probes: Vec<Point> = pts.iter().step_by((n / 1000).max(1)).copied().collect();
            let t0 = Instant::now();
            let idx = build_index(pts, index, method)?;
            let build = t0.elapsed();
            let t1 = Instant::now();
            let mut found = 0usize;
            for p in &probes {
                if idx.point_query(*p).is_some() {
                    found += 1;
                }
            }
            let per = t1.elapsed().as_secs_f64() * 1e6 / probes.len() as f64;
            let _ = writeln!(out, "index:               {}", index.name());
            let _ = writeln!(out, "points:              {n}");
            let _ = writeln!(out, "build time:          {build:?}");
            let _ = writeln!(out, "point query:         {per:.2} µs/query");
            let _ = writeln!(out, "probes found:        {found}/{}", probes.len());
            let _ = writeln!(out, "structure depth:     {}", idx.depth());
        }
        Command::Ingest {
            input,
            index,
            updates,
            batch,
            shards,
            router,
            persist,
            seed,
        } => {
            let pts = load_points(&input)?;
            let base_len = pts.len();
            let stream = stream::churn(&pts, updates, 0.7, seed);
            let chunk = if batch == 0 {
                stream.len().max(1)
            } else {
                batch
            };
            if let Some(dir_str) = persist {
                if index != IndexChoice::Zm {
                    return Err(
                        "ingest: --persist serves ZM deployments only (the exact snapshot \
                         codec); use --index zm"
                            .into(),
                    );
                }
                let dir = Path::new(&dir_str);
                let mut dep = if dir.join(MANIFEST_NAME).exists() {
                    let manifest = read_manifest(dir).map_err(|e| format!("{dir_str}: {e}"))?;
                    let t0 = Instant::now();
                    let dep = ZmDeployment::open(dir, &Elsi::new(ElsiConfig::default()))?;
                    let _ = writeln!(
                        out,
                        "recovered generation {} from {dir_str} in {:?}",
                        manifest.generation,
                        t0.elapsed()
                    );
                    dep
                } else {
                    let (rows, cols) = shards.unwrap_or((2, 2));
                    let mut cfg = ShardedConfig::grid(rows, cols);
                    cfg.seed = seed;
                    let elsi = Elsi::new(ElsiConfig::scaled_for(base_len));
                    let mut dep = ZmDeployment::build(pts, &cfg, router, &elsi);
                    let g = dep.save(dir)?;
                    let _ = writeln!(
                        out,
                        "persisted generation {g} to {dir_str} ({rows}x{cols} ZM shards, {} router)",
                        router.name()
                    );
                    dep
                };
                let t0 = Instant::now();
                let mut rebuilds = 0usize;
                for c in stream.chunks(chunk) {
                    rebuilds += dep.par_apply_updates(c);
                }
                let secs = t0.elapsed().as_secs_f64();
                // Checkpoint: the new generation's snapshots absorb the
                // tail just journaled into the per-shard WALs.
                let generation = dep.save(dir)?;
                let _ = writeln!(
                    out,
                    "ingested {} updates (journaled per shard, checkpointed as generation {generation})",
                    stream.len()
                );
                let _ = writeln!(out, "batch size:          {chunk}");
                let _ = writeln!(
                    out,
                    "throughput:          {:.0} updates/s",
                    stream.len() as f64 / secs.max(1e-12)
                );
                let _ = writeln!(out, "shard rebuilds:      {rebuilds}");
                let _ = writeln!(
                    out,
                    "live points:         {} (from {base_len})",
                    dep.as_index().len()
                );
                return Ok(out);
            }
            match shards {
                Some((rows, cols)) => {
                    let mut sharded = build_sharded(pts, index, rows, cols, router);
                    let t0 = Instant::now();
                    let mut rebuilds = 0usize;
                    for c in stream.chunks(chunk) {
                        rebuilds += sharded.par_apply_updates(c);
                    }
                    let secs = t0.elapsed().as_secs_f64();
                    let _ = writeln!(
                        out,
                        "ingested {} updates through {rows}x{cols} shards ({} kind, {} router)",
                        stream.len(),
                        index.name(),
                        router.name()
                    );
                    let _ = writeln!(out, "batch size:          {chunk}");
                    let _ = writeln!(
                        out,
                        "throughput:          {:.0} updates/s",
                        stream.len() as f64 / secs.max(1e-12)
                    );
                    let _ = writeln!(out, "shard rebuilds:      {rebuilds}");
                    let _ = writeln!(
                        out,
                        "live points:         {} (from {base_len})",
                        sharded.len()
                    );
                }
                None => {
                    let elsi = Elsi::new(ElsiConfig::scaled_for(base_len));
                    let builder = elsi.fixed_builder(Method::Rs);
                    let builder = Arc::new(if index == IndexChoice::Lisa {
                        builder.for_lisa()
                    } else {
                        builder
                    });
                    let rebuild: RebuildFn<DeltaOverlay<BoxedIndex>> = Box::new(move |p| {
                        DeltaOverlay::new(build_kind(p, index, builder.as_ref()))
                    });
                    let mut proc = UpdateProcessor::new(pts, rebuild, RebuildPolicy::Never, 1024);
                    let t0 = Instant::now();
                    let (mut applied, mut ignored) = (0usize, 0usize);
                    for c in stream.chunks(chunk) {
                        let o = proc.apply_batch(c);
                        applied += o.applied;
                        ignored += o.ignored;
                    }
                    let secs = t0.elapsed().as_secs_f64();
                    let _ = writeln!(
                        out,
                        "ingested {} updates into a {} monolith",
                        stream.len(),
                        index.name()
                    );
                    let _ = writeln!(out, "batch size:          {chunk}");
                    let _ = writeln!(
                        out,
                        "throughput:          {:.0} updates/s",
                        stream.len() as f64 / secs.max(1e-12)
                    );
                    let _ = writeln!(out, "applied / ignored:   {applied} / {ignored}");
                    let _ = writeln!(out, "live points:         {} (from {base_len})", proc.len());
                }
            }
        }
        Command::Query {
            input,
            index,
            query,
            shards,
            router,
            persist,
        } => {
            if let Some(dir_str) = persist {
                if index != IndexChoice::Zm {
                    return Err(
                        "query: --persist serves ZM deployments only (the exact snapshot \
                         codec); use --index zm"
                            .into(),
                    );
                }
                let dir = Path::new(&dir_str);
                let dep = if dir.join(MANIFEST_NAME).exists() {
                    let manifest = read_manifest(dir).map_err(|e| format!("{dir_str}: {e}"))?;
                    let t0 = Instant::now();
                    let dep = ZmDeployment::open(dir, &Elsi::new(ElsiConfig::default()))?;
                    let _ = writeln!(
                        out,
                        "recovered generation {} from {dir_str} ({} shards, {} router) in {:?}",
                        manifest.generation,
                        dep.num_shards(),
                        manifest.router_kind,
                        t0.elapsed()
                    );
                    dep
                } else {
                    let pts = load_points(&input)?;
                    let (rows, cols) = shards.unwrap_or((2, 2));
                    let elsi = Elsi::new(ElsiConfig::scaled_for(pts.len()));
                    let mut dep =
                        ZmDeployment::build(pts, &ShardedConfig::grid(rows, cols), router, &elsi);
                    let generation = dep.save(dir)?;
                    let _ = writeln!(
                        out,
                        "persisted generation {generation} to {dir_str} ({rows}x{cols} ZM shards, {} router)",
                        router.name()
                    );
                    dep
                };
                render_query(dep.as_index(), query, &mut out);
                return Ok(out);
            }
            let pts = load_points(&input)?;
            match shards {
                Some((rows, cols)) => {
                    let sharded = build_sharded(pts, index, rows, cols, router);
                    let _ = writeln!(
                        out,
                        "serving through {rows}x{cols} shards ({} kind, {} router)",
                        index.name(),
                        router.name()
                    );
                    render_query(&sharded, query, &mut out);
                }
                None => {
                    let idx = build_index(pts, index, MethodChoice::Fixed(Method::Rs))?;
                    render_query(idx.as_ref(), query, &mut out);
                }
            }
        }
        Command::Save {
            input,
            dir,
            shards: (rows, cols),
            router,
            seed,
        } => {
            let pts = load_points(&input)?;
            let n = pts.len();
            let mut cfg = ShardedConfig::grid(rows, cols);
            cfg.seed = seed;
            let elsi = Elsi::new(ElsiConfig::scaled_for(n));
            let t0 = Instant::now();
            let mut dep = ZmDeployment::build(pts, &cfg, router, &elsi);
            let build = t0.elapsed();
            let t1 = Instant::now();
            let generation = dep.save(Path::new(&dir))?;
            let save_time = t1.elapsed();
            let _ = writeln!(
                out,
                "persisted {n} points as {rows}x{cols} ZM shards ({} router)",
                router.name()
            );
            let _ = writeln!(out, "directory:           {dir}");
            let _ = writeln!(out, "generation:          {generation}");
            let _ = writeln!(out, "build time:          {build:?}");
            let _ = writeln!(out, "save time:           {save_time:?}");
        }
        Command::Load { dir } => {
            let path = Path::new(&dir);
            let manifest = read_manifest(path).map_err(|e| format!("{dir}: {e}"))?;
            let t0 = Instant::now();
            let dep = ZmDeployment::open(path, &Elsi::new(ElsiConfig::default()))?;
            let took = t0.elapsed();
            let _ = writeln!(
                out,
                "recovered generation {} from {dir}",
                manifest.generation
            );
            let _ = writeln!(out, "router:              {}", manifest.router_kind);
            let _ = writeln!(out, "shards:              {}", dep.num_shards());
            let _ = writeln!(out, "live points:         {}", dep.as_index().len());
            let _ = writeln!(out, "recovery time:       {took:?}");
        }
    }
    Ok(out)
}

/// Convenience for tests: a `MappedData` over CSV input.
pub fn mapped_data_of(path: &str) -> Result<MappedData, String> {
    Ok(MappedData::build(load_points(path)?, &MortonMapper))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_generate() {
        let cmd = parse_args(&args("generate NYC 5000 /tmp/nyc.csv --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                dataset: Dataset::Nyc,
                n: 5000,
                out: "/tmp/nyc.csv".into(),
                seed: 7
            }
        );
        // Default seed.
        let cmd = parse_args(&args("generate uniform 10 out.csv")).unwrap();
        assert!(matches!(cmd, Command::Generate { seed: 42, .. }));
    }

    #[test]
    fn parse_build_flags() {
        let cmd = parse_args(&args("build in.csv --index lisa --method sp")).unwrap();
        assert_eq!(
            cmd,
            Command::Build {
                input: "in.csv".into(),
                index: IndexChoice::Lisa,
                method: MethodChoice::Fixed(Method::Sp)
            }
        );
        let cmd = parse_args(&args("build in.csv --method pwl")).unwrap();
        assert!(matches!(
            cmd,
            Command::Build {
                method: MethodChoice::Pwl,
                ..
            }
        ));
    }

    #[test]
    fn parse_queries() {
        let cmd = parse_args(&args("query in.csv --point 0.5,0.25")).unwrap();
        assert!(matches!(
            cmd,
            Command::Query {
                query: QuerySpec::Point(_),
                ..
            }
        ));
        let cmd = parse_args(&args("query in.csv --window 0.1,0.1,0.2,0.2")).unwrap();
        assert!(matches!(
            cmd,
            Command::Query {
                query: QuerySpec::Window(_),
                ..
            }
        ));
        let cmd = parse_args(&args("query in.csv --knn 0.5,0.5,25 --index rsmi")).unwrap();
        assert!(matches!(
            cmd,
            Command::Query {
                query: QuerySpec::Knn(_, 25),
                index: IndexChoice::Rsmi,
                shards: None,
                ..
            }
        ));
    }

    #[test]
    fn parse_shards() -> Result<(), String> {
        let cmd = parse_args(&args("query in.csv --shards 2x4 --point 0.5,0.5"))?;
        assert!(matches!(
            cmd,
            Command::Query {
                shards: Some((2, 4)),
                ..
            }
        ));
        assert!(parse_args(&args("query in.csv --shards 2 --point 0.5,0.5")).is_err());
        assert!(parse_args(&args("query in.csv --shards 0x2 --point 0.5,0.5")).is_err());
        assert!(parse_args(&args("query in.csv --shards axb --point 0.5,0.5")).is_err());
        Ok(())
    }

    #[test]
    fn parse_router() -> Result<(), String> {
        let cmd = parse_args(&args(
            "query in.csv --shards 2x2 --router learned --point 0.5,0.5",
        ))?;
        assert!(matches!(
            cmd,
            Command::Query {
                shards: Some((2, 2)),
                router: RouterChoice::Learned,
                ..
            }
        ));
        // Default policy is the grid; explicit `grid` parses too.
        let cmd = parse_args(&args("query in.csv --shards 2x2 --point 0.5,0.5"))?;
        assert!(matches!(
            cmd,
            Command::Query {
                router: RouterChoice::Grid,
                ..
            }
        ));
        let cmd = parse_args(&args(
            "ingest in.csv --shards 2x2 --router grid --updates 10",
        ))?;
        assert!(matches!(
            cmd,
            Command::Ingest {
                router: RouterChoice::Grid,
                ..
            }
        ));
        // --router without --shards, and unknown policies, are rejected.
        assert!(parse_args(&args("query in.csv --router learned --point 0.5,0.5")).is_err());
        assert!(parse_args(&args("ingest in.csv --router learned")).is_err());
        assert!(parse_args(&args(
            "query in.csv --shards 2x2 --router rr --point 0.5,0.5"
        ))
        .is_err());
        Ok(())
    }

    #[test]
    fn parse_ingest() -> Result<(), String> {
        let cmd = parse_args(&args(
            "ingest in.csv --updates 500 --batch 100 --shards 2x2 --seed 3",
        ))?;
        assert_eq!(
            cmd,
            Command::Ingest {
                input: "in.csv".into(),
                index: IndexChoice::Zm,
                updates: 500,
                batch: 100,
                shards: Some((2, 2)),
                router: RouterChoice::Grid,
                persist: None,
                seed: 3
            }
        );
        // Defaults: whole stream in one batch, monolith, seed 7.
        let cmd = parse_args(&args("ingest in.csv"))?;
        assert!(matches!(
            cmd,
            Command::Ingest {
                updates: 1000,
                batch: 0,
                shards: None,
                seed: 7,
                ..
            }
        ));
        assert!(parse_args(&args("ingest in.csv --updates 0")).is_err());
        assert!(parse_args(&args("ingest in.csv --bogus")).is_err());
        Ok(())
    }

    #[test]
    fn ingest_reports_throughput() -> Result<(), String> {
        let path = temp_csv("ingest", Dataset::Uniform, 800);
        let report = run(parse_args(&args(&format!(
            "ingest {path} --updates 400 --batch 100"
        )))?)?;
        assert!(report.contains("ingested 400 updates"), "{report}");
        assert!(report.contains("batch size:          100"), "{report}");
        assert!(report.contains("live points:"), "{report}");
        let sharded = run(parse_args(&args(&format!(
            "ingest {path} --updates 200 --shards 2x2"
        )))?)?;
        std::fs::remove_file(&path).ok();
        assert!(sharded.contains("2x2 shards"), "{sharded}");
        assert!(sharded.contains("throughput:"), "{sharded}");
        Ok(())
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("generate mars 10 out.csv")).is_err());
        assert!(parse_args(&args("build in.csv --index btree")).is_err());
        assert!(parse_args(&args("query in.csv")).is_err());
        assert!(parse_args(&args("query in.csv --knn 0.5,0.5,0")).is_err());
        assert!(parse_args(&args("query in.csv --point 0.5")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    fn temp_csv(name: &str, ds: Dataset, n: usize) -> String {
        let path =
            std::env::temp_dir().join(format!("elsi_cli_test_{}_{name}.csv", std::process::id()));
        let path = path.to_string_lossy().into_owned();
        run(Command::Generate {
            dataset: ds,
            n,
            out: path.clone(),
            seed: 1,
        })
        .unwrap();
        path
    }

    #[test]
    fn generate_inspect_roundtrip() {
        let path = temp_csv("inspect", Dataset::Skewed, 2000);
        let report = run(Command::Inspect {
            input: path.clone(),
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
        assert!(report.contains("points:              2000"), "{report}");
        assert!(report.contains("dist(D_U, D)"), "{report}");
        assert!(report.contains("RS (skewed)"), "{report}");
    }

    #[test]
    fn build_reports_exact_probes() {
        let path = temp_csv("build", Dataset::Uniform, 1500);
        for method in ["rs", "pwl"] {
            let cmd =
                parse_args(&args(&format!("build {path} --index zm --method {method}"))).unwrap();
            let report = run(cmd).unwrap();
            let want = "probes found:        1500/1500";
            assert!(report.contains(want), "method {method}: {report}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flood_builds_and_probes() {
        let path = temp_csv("flood", Dataset::Uniform, 1000);
        let cmd = parse_args(&args(&format!("build {path} --index flood --method pwl"))).unwrap();
        let report = run(cmd).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(
            report.contains("probes found:        1000/1000"),
            "{report}"
        );
    }

    #[test]
    fn lisa_rejects_synthesising_methods() {
        let path = temp_csv("lisa", Dataset::Uniform, 500);
        let cmd = parse_args(&args(&format!("build {path} --index lisa --method cl"))).unwrap();
        let err = run(cmd).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("inapplicable"), "{err}");
    }

    #[test]
    fn query_window_and_knn() {
        let path = temp_csv("query", Dataset::Uniform, 1200);
        let cmd = parse_args(&args(&format!("query {path} --window 0.2,0.2,0.4,0.4"))).unwrap();
        let report = run(cmd).unwrap();
        assert!(report.contains("points in window"), "{report}");

        let cmd = parse_args(&args(&format!("query {path} --knn 0.5,0.5,5"))).unwrap();
        let report = run(cmd).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(report.contains("5 nearest neighbours"), "{report}");
    }

    #[test]
    fn parse_save_and_load() -> Result<(), String> {
        let cmd = parse_args(&args(
            "save in.csv /tmp/deploy --shards 2x3 --router learned --seed 9",
        ))?;
        assert_eq!(
            cmd,
            Command::Save {
                input: "in.csv".into(),
                dir: "/tmp/deploy".into(),
                shards: (2, 3),
                router: RouterChoice::Learned,
                seed: 9
            }
        );
        // Defaults.
        let cmd = parse_args(&args("save in.csv d"))?;
        assert!(matches!(
            cmd,
            Command::Save {
                shards: (2, 2),
                router: RouterChoice::Grid,
                seed: 42,
                ..
            }
        ));
        assert_eq!(
            parse_args(&args("load /tmp/deploy"))?,
            Command::Load {
                dir: "/tmp/deploy".into()
            }
        );
        assert!(parse_args(&args("save in.csv")).is_err());
        assert!(parse_args(&args("load")).is_err());
        Ok(())
    }

    #[test]
    fn parse_persist_flag() -> Result<(), String> {
        let cmd = parse_args(&args("query in.csv --persist d --point 0.5,0.5"))?;
        assert!(matches!(
            cmd,
            Command::Query {
                persist: Some(_),
                shards: None,
                ..
            }
        ));
        // --router without --shards is fine when --persist supplies the
        // deployment (it picks the policy for the first-use build).
        assert!(parse_args(&args(
            "query in.csv --persist d --router learned --point 0.5,0.5"
        ))
        .is_ok());
        let cmd = parse_args(&args("ingest in.csv --persist d --updates 10"))?;
        assert!(matches!(
            cmd,
            Command::Ingest {
                persist: Some(_),
                ..
            }
        ));
        assert!(parse_args(&args("query in.csv --persist --point 0.5,0.5")).is_err());
        Ok(())
    }

    fn temp_dir(name: &str) -> String {
        let d = std::env::temp_dir().join(format!("elsi_cli_deploy_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d.to_string_lossy().into_owned()
    }

    #[test]
    fn save_then_load_round_trips() -> Result<(), String> {
        let path = temp_csv("save_load", Dataset::Uniform, 900);
        let dir = temp_dir("save_load");
        let saved = run(parse_args(&args(&format!(
            "save {path} {dir} --shards 2x2 --router learned"
        )))?)?;
        assert!(saved.contains("generation:          1"), "{saved}");
        let loaded = run(parse_args(&args(&format!("load {dir}")))?)?;
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
        assert!(loaded.contains("recovered generation 1"), "{loaded}");
        assert!(loaded.contains("router:              learned"), "{loaded}");
        assert!(loaded.contains("live points:         900"), "{loaded}");
        Ok(())
    }

    #[test]
    fn query_persist_builds_once_then_recovers() -> Result<(), String> {
        let path = temp_csv("persist_q", Dataset::Skewed, 800);
        let dir = temp_dir("persist_q");
        let q = format!("query {path} --persist {dir} --window 0.1,0.1,0.5,0.5");
        let first = run(parse_args(&args(&q))?)?;
        assert!(first.contains("persisted generation 1"), "{first}");
        let second = run(parse_args(&args(&q))?)?;
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
        assert!(second.contains("recovered generation 1"), "{second}");
        let hits = |s: &str| {
            s.lines()
                .find(|l| l.contains("points in window"))
                .map(str::to_owned)
        };
        assert!(hits(&first).is_some(), "{first}");
        assert_eq!(hits(&first), hits(&second), "recovery changed the answer");
        // Non-ZM kinds are rejected up front.
        let err = run(parse_args(&args(&format!(
            "query {path} --persist {dir} --index lisa --point 0.5,0.5"
        )))?)
        .unwrap_err();
        assert!(err.contains("ZM deployments only"), "{err}");
        Ok(())
    }

    #[test]
    fn ingest_persist_checkpoints_and_reloads() -> Result<(), String> {
        let path = temp_csv("persist_i", Dataset::Uniform, 700);
        let dir = temp_dir("persist_i");
        let report = run(parse_args(&args(&format!(
            "ingest {path} --updates 300 --batch 50 --persist {dir}"
        )))?)?;
        assert!(report.contains("persisted generation 1"), "{report}");
        assert!(report.contains("checkpointed as generation 2"), "{report}");
        let live = report
            .lines()
            .find(|l| l.starts_with("live points:"))
            .map(str::to_owned)
            .ok_or("no live points line")?;
        // The checkpoint holds the post-ingest state.
        let loaded = run(parse_args(&args(&format!("load {dir}")))?)?;
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
        let live_count = live
            .split_whitespace()
            .nth(2)
            .ok_or("bad live points line")?
            .to_string();
        assert!(
            loaded.contains(&format!("live points:         {live_count}")),
            "{loaded}\nvs ingest: {live}"
        );
        Ok(())
    }

    #[test]
    fn sharded_queries_match_the_monolith() -> Result<(), String> {
        let path = temp_csv("sharded", Dataset::Skewed, 1000);
        for q in ["--knn 0.5,0.5,5", "--window 0.2,0.2,0.4,0.4"] {
            let mono = run(parse_args(&args(&format!("query {path} {q}")))?)?;
            for router in ["grid", "learned"] {
                let sharded = run(parse_args(&args(&format!(
                    "query {path} --shards 2x2 --router {router} {q}"
                )))?)?;
                assert!(
                    sharded.contains(&format!(
                        "serving through 2x2 shards (ZM kind, {router} router)"
                    )),
                    "{sharded}"
                );
                // Same hit counts (ZM is exact, and so is the sharded
                // merge — under either routing policy).
                let tail = |s: &str| {
                    s.lines()
                        .find(|l| {
                            l.contains("points in window") || l.contains("nearest neighbours")
                        })
                        .map(str::to_owned)
                };
                assert!(tail(&mono).is_some(), "{q}: no hit line in {mono}");
                assert_eq!(tail(&mono), tail(&sharded), "{q} via {router}");
            }
        }
        std::fs::remove_file(&path).ok();
        Ok(())
    }
}
