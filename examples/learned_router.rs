//! Learned CDF routing for the sharded serving layer.
//!
//! Builds the same skewed workload twice behind a 4×4 shard grid — once
//! with uniform grid cuts, once with the learned CDF router's equi-mass
//! quantile cuts — and prints the per-shard occupancy each policy
//! produces. Under skew the grid concentrates most points in a few
//! shards while the learned cuts keep every shard near `n / S` points;
//! queries answer identically either way because both routers satisfy
//! the same ownership contract.
//!
//! Run with: `cargo run --release --example learned_router`

use elsi::{Elsi, ElsiConfig};
use elsi_data::{gen, Dataset};
use elsi_indices::{timed, SpatialIndex};
use elsi_serve::{shard_occupancy, GridRouter, LearnedRouter, Router, ShardedConfig, ShardedIndex};

const ROWS: usize = 4;
const COLS: usize = 4;

/// Prints a shard-occupancy histogram as a ROWS×COLS table plus its
/// max/mean balance figure (1.0 = perfectly even).
fn report(label: &str, counts: &[usize]) {
    let max = counts.iter().copied().max().unwrap_or(0) as f64;
    let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
    println!("\n{label} — occupancy max/mean {:.2}", max / mean.max(1.0));
    for row in counts.chunks(COLS) {
        let cells: Vec<String> = row.iter().map(|c| format!("{c:>7}")).collect();
        println!("  {}", cells.join(" "));
    }
}

fn main() {
    let n = 50_000;
    println!("Routing {n} skewed points through a {ROWS}x{COLS} shard grid…");
    let pts = Dataset::Skewed.generate(n, 42);

    // Routers are coordinate-pure, so occupancy is a property of the
    // router alone — no shards needed to compare the two policies.
    let grid = GridRouter::new(ROWS, COLS);
    let learned = LearnedRouter::fit_sampled(&pts, ROWS, COLS);
    report("grid router", &shard_occupancy(&grid, &pts));
    report("learned router", &shard_occupancy(&learned, &pts));

    // Serve through the learned deployment: per-shard ZM indices behind
    // the fitted CDF router, with the usual exact cross-shard queries.
    let elsi = Elsi::new(ElsiConfig::scaled_for(n));
    let cfg = ShardedConfig::grid(ROWS, COLS);
    let (sharded, build) = timed(|| ShardedIndex::zm_learned(pts.clone(), &cfg, &elsi));
    println!(
        "\nBuilt learned-routed deployment in {build:?} ({} shards)",
        sharded.router().num_shards()
    );

    let windows = gen::window_queries(&pts, 200, 1e-4, 7);
    let (hits, secs) = timed(|| {
        sharded
            .par_window_queries(&windows)
            .iter()
            .map(Vec::len)
            .sum::<usize>()
    });
    println!(
        "Window queries: {hits} hits over {} windows ({:.1} µs/query)",
        windows.len(),
        secs.as_secs_f64() * 1e6 / windows.len() as f64
    );

    let users = gen::knn_queries(&pts, 200, 11);
    let (neighbours, secs) = timed(|| {
        sharded
            .par_knn_queries(&users, 10)
            .iter()
            .map(Vec::len)
            .sum::<usize>()
    });
    println!(
        "kNN queries: {neighbours} neighbours over {} queries ({:.1} µs/query)",
        users.len(),
        secs.as_secs_f64() * 1e6 / users.len() as f64
    );
}
