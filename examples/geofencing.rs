//! Geofencing / map viewport scenario (the paper's motivating window-query
//! workload): points of interest over a city with extreme hotspots, and
//! screen-viewport window queries following the user density.
//!
//! Compares the strongest traditional index (RR*) with a learned RSMI built
//! through ELSI, reporting build time, window latency and recall.
//!
//! Run with: `cargo run --release --example geofencing`

use elsi::{Elsi, ElsiConfig, Method};
use elsi_data::{gen, Dataset};
use elsi_indices::{timed, RStarConfig, RStarIndex, RsmiConfig, RsmiIndex, SpatialIndex};
use elsi_spatial::Point;

fn recall(got: &[Point], want: usize) -> f64 {
    if want == 0 {
        1.0
    } else {
        got.len().min(want) as f64 / want as f64
    }
}

fn main() {
    let n = 80_000;
    println!("Simulating {n} NYC-like PoIs (hotspots + street grid)…");
    let pois = Dataset::Nyc.generate(n, 7);

    // Screen viewports: 0.01% of the map each, centred on busy places.
    let viewports = gen::window_queries(&pois, 500, 0.0001, 3);

    let (rstar, rstar_build) = timed(|| RStarIndex::build(pois.clone(), &RStarConfig::default()));

    let elsi = Elsi::new(ElsiConfig::scaled_for(n));
    let (rsmi, rsmi_build) = timed(|| {
        RsmiIndex::build(
            pois.clone(),
            &RsmiConfig::default(),
            &elsi.fixed_builder(Method::Rs),
        )
    });

    println!("\nBuild:  RR* {rstar_build:?}   RSMI-F {rsmi_build:?}");

    let mut stats: Vec<(&str, f64, f64)> = Vec::new();
    for (name, idx) in [("RR*", &rstar as &dyn SpatialIndex), ("RSMI-F", &rsmi)] {
        let (rec_sum, elapsed) = timed(|| {
            let mut rec_sum = 0.0;
            for w in &viewports {
                let got = idx.window_query(w);
                let want = pois.iter().filter(|p| w.contains(p)).count();
                rec_sum += recall(&got, want);
            }
            rec_sum
        });
        let per = elapsed.as_secs_f64() * 1e6 / viewports.len() as f64;
        stats.push((name, per, rec_sum / viewports.len() as f64));
    }

    println!(
        "\nViewport (window) queries over {} screens:",
        viewports.len()
    );
    println!("  {:8} {:>12} {:>8}", "index", "µs/query", "recall");
    for (name, per, rec) in &stats {
        println!("  {name:8} {per:>12.1} {rec:>8.3}");
    }

    // Nearby-PoI lookups (kNN) around user positions.
    let users = gen::knn_queries(&pois, 300, 11);
    println!("\nNearest-25-PoI queries around {} users:", users.len());
    for (name, idx) in [("RR*", &rstar as &dyn SpatialIndex), ("RSMI-F", &rsmi)] {
        let (total, elapsed) = timed(|| {
            let mut total = 0usize;
            for u in &users {
                total += idx.knn_query(*u, 25).len();
            }
            total
        });
        let per = elapsed.as_secs_f64() * 1e6 / users.len() as f64;
        println!("  {name:8} {per:>12.1} µs/query ({total} neighbours returned)");
    }
}
