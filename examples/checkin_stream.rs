//! Check-in stream scenario (the paper's Fig. 1 and §VII-H): an index built
//! over historical check-ins receives a skewed stream of new check-ins from
//! a small region. Without rebuilds the learned structure degrades; the
//! ELSI update processor tracks the CDF drift and triggers a full rebuild
//! through the build processor at the right time.
//!
//! Run with: `cargo run --release --example checkin_stream`

use elsi::{Elsi, ElsiConfig, Method, RebuildPolicy, UpdateOutcome, UpdateProcessor};
use elsi_data::Dataset;
use elsi_indices::{timed_secs, RsmiConfig, RsmiIndex, SpatialIndex};
use elsi_spatial::Point;

fn avg_point_query_micros(idx: &dyn SpatialIndex, probes: &[Point]) -> f64 {
    let (found, secs) = timed_secs(|| {
        let mut found = 0usize;
        for p in probes {
            if idx.point_query(*p).is_some() {
                found += 1;
            }
        }
        found
    });
    std::hint::black_box(found);
    secs * 1e6 / probes.len() as f64
}

fn main() {
    let n = 40_000;
    println!("Historical check-ins: {n} OSM-like points");
    let base = Dataset::Osm1.generate(n, 21);
    let probes: Vec<Point> = base.iter().step_by(40).copied().collect();

    let elsi = Elsi::new(ElsiConfig::scaled_for(n));
    let make_proc = |policy: RebuildPolicy| {
        let cfg = elsi.config().clone();
        let mr = elsi.mr_pool();
        UpdateProcessor::new(
            base.clone(),
            Box::new(move |pts| {
                let builder = elsi::ElsiBuilder::fixed(Method::Rs, cfg.clone(), mr.clone());
                RsmiIndex::build(pts, &RsmiConfig::default(), &builder)
            }),
            policy,
            2_000,
        )
    };

    // RSMI-F: never rebuild. RSMI-R: rebuild on drift.
    let mut no_rebuild = make_proc(RebuildPolicy::Never);
    let mut with_rebuild = make_proc(RebuildPolicy::Threshold {
        max_drift: 0.08,
        max_ratio: 4.0,
    });

    // The stream: check-ins from one hot neighbourhood (heavy skew).
    let stream: Vec<Point> = Dataset::Skewed
        .generate(n, 33)
        .into_iter()
        .enumerate()
        .map(|(i, mut p)| {
            p.id = 10_000_000 + i as u64;
            p.x = 0.1 + p.x * 0.08;
            p.y = 0.7 + p.y * 0.08;
            p
        })
        .collect();

    println!(
        "\n{:>8} {:>14} {:>14} {:>9}",
        "inserted", "F µs/query", "R µs/query", "rebuilds"
    );
    let mut inserted = 0usize;
    for chunk in stream.chunks(n / 8) {
        for p in chunk {
            no_rebuild.insert(*p);
            if with_rebuild.insert(*p) == UpdateOutcome::Rebuilt {
                // counted below
            }
        }
        inserted += chunk.len();
        let f = avg_point_query_micros(no_rebuild.index(), &probes);
        let r = avg_point_query_micros(with_rebuild.index(), &probes);
        println!(
            "{:>7}% {f:>14.2} {r:>14.2} {:>9}",
            inserted * 100 / n,
            with_rebuild.rebuilds()
        );
    }

    let feats = with_rebuild.features();
    println!(
        "\nFinal drift features: sim(D', D) = {:.3}, update ratio = {:.2}, depth = {}",
        feats.drift_sim, feats.update_ratio, feats.depth
    );
    println!(
        "The rebuild-managed index performed {} full rebuild(s) through the build processor.",
        with_rebuild.rebuilds()
    );
}
