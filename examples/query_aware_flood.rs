//! Query-aware indexing with Flood — the paper's closing future-work item
//! ("we also plan to extend ELSI to support query-aware learned indices
//! such as Flood"), demonstrated end to end: ELSI accelerates Flood's
//! per-column model builds while Flood's cost model tunes its layout to
//! the query workload.
//!
//! Run with: `cargo run --release --example query_aware_flood`

use elsi::{Elsi, ElsiConfig, Method};
use elsi_data::Dataset;
use elsi_indices::{timed, timed_secs, FloodConfig, FloodIndex, SpatialIndex};
use elsi_spatial::Rect;

fn window_micros(idx: &FloodIndex, windows: &[Rect]) -> f64 {
    let (total, secs) = timed_secs(|| {
        let mut total = 0usize;
        for w in windows {
            total += idx.window_query(w).len();
        }
        total
    });
    std::hint::black_box(total);
    secs * 1e6 / windows.len() as f64
}

fn main() {
    let n = 120_000;
    println!("Data: {n} OSM-like points. Two workloads with opposite shapes.\n");
    let pts = Dataset::Osm1.generate(n, 5);
    let elsi = Elsi::new(ElsiConfig::scaled_for(n));
    let builder = elsi.fixed_builder(Method::Rs);

    // Workload A: tall, narrow windows (column scans).
    let tall: Vec<Rect> = (0..200)
        .map(|i| {
            let x = (i as f64 / 200.0) * 0.98;
            Rect::new(x, 0.0, x + 0.005, 1.0)
        })
        .collect();
    // Workload B: wide, flat windows (row scans).
    let flat: Vec<Rect> = (0..200)
        .map(|i| {
            let y = (i as f64 / 200.0) * 0.98;
            Rect::new(0.0, y, 1.0, y + 0.005)
        })
        .collect();

    let candidates = [1, 4, 16, 64, 256];
    let (idx_tall, cols_tall) = FloodIndex::tune(pts.clone(), &tall, &candidates, &builder);
    let (idx_flat, cols_flat) = FloodIndex::tune(pts.clone(), &flat, &candidates, &builder);
    println!("tuned for tall windows: {cols_tall} columns");
    println!("tuned for flat windows: {cols_flat} columns\n");

    println!("{:22} {:>14} {:>14}", "", "tall workload", "flat workload");
    for (name, idx) in [
        (format!("Flood({cols_tall} cols)"), &idx_tall),
        (format!("Flood({cols_flat} cols)"), &idx_flat),
    ] {
        println!(
            "{name:22} {:>11.0} µs {:>11.0} µs",
            window_micros(idx, &tall),
            window_micros(idx, &flat)
        );
    }

    // ELSI's build advantage applies to Flood like any map-and-sort index.
    let (_og, og) = timed(|| {
        FloodIndex::build(
            pts.clone(),
            &FloodConfig { columns: cols_tall },
            &elsi.fixed_builder(Method::Og),
        )
    });
    let (_fast, fast) =
        timed(|| FloodIndex::build(pts, &FloodConfig { columns: cols_tall }, &builder));
    println!(
        "\nFlood build: OG {og:?} vs ELSI(RS) {fast:?} ({:.0}x)",
        og.as_secs_f64() / fast.as_secs_f64().max(1e-9)
    );
}
