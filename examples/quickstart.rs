//! Quickstart: build a learned spatial index the slow way (OG: train on all
//! of `D`) and the ELSI way (train on an engineered reduced set), and show
//! that queries stay just as good while the build gets far cheaper.
//!
//! Run with: `cargo run --release --example quickstart`

use elsi::{Elsi, ElsiConfig, Method};
use elsi_data::{gen, Dataset};
use elsi_indices::{timed, SpatialIndex, ZmConfig, ZmIndex};

fn main() {
    let n = 100_000;
    println!("Generating {n} OSM-like points…");
    let points = Dataset::Osm1.generate(n, 42);

    let elsi = Elsi::new(ElsiConfig::scaled_for(n));
    let zm_cfg = ZmConfig { fanout: 8 };

    // OG: the base index trains every model on its full partition.
    let (og, og_time) =
        timed(|| ZmIndex::build(points.clone(), &zm_cfg, &elsi.fixed_builder(Method::Og)));

    // ELSI (RS method): models train on small representative sets instead.
    let (fast, elsi_time) =
        timed(|| ZmIndex::build(points.clone(), &zm_cfg, &elsi.fixed_builder(Method::Rs)));

    println!("\nBuild time");
    println!("  ZM   (OG, full training):    {og_time:?}");
    println!("  ZM-F (ELSI, reduced set):    {elsi_time:?}");
    println!(
        "  speedup: {:.1}x",
        og_time.as_secs_f64() / elsi_time.as_secs_f64().max(1e-9)
    );

    // Point queries: every indexed point, timed.
    for (name, idx) in [("ZM", &og), ("ZM-F", &fast)] {
        let (found, elapsed) = timed(|| {
            let mut found = 0usize;
            for p in points.iter().step_by(10) {
                if idx.point_query(*p).is_some() {
                    found += 1;
                }
            }
            found
        });
        let per = elapsed.as_secs_f64() * 1e6 / (n / 10) as f64;
        println!(
            "\n{name}: point query {per:.2} µs/query, {found}/{} found",
            n / 10
        );
        assert_eq!(
            found,
            n / 10,
            "learned indices must be exact on point queries"
        );
    }

    // Window queries.
    let windows = gen::window_queries(&points, 200, 0.0001, 7);
    for (name, idx) in [("ZM", &og), ("ZM-F", &fast)] {
        let (total, elapsed) = timed(|| {
            windows
                .iter()
                .map(|w| idx.window_query(w).len())
                .sum::<usize>()
        });
        let per = elapsed.as_secs_f64() * 1e6 / windows.len() as f64;
        println!(
            "{name}: window query {per:.1} µs/query ({total} results over {} windows)",
            windows.len()
        );
    }

    println!("\nSame index, same queries — a fraction of the build time.");
}
