//! Method tuning: sweep the per-method parameters of the ELSI pool (ρ for
//! SP, C for CL, ε for MR, β for RS, η for RL — the axes of the paper's
//! Fig. 7 Pareto study) on one data set and print the build-time /
//! error-span trade-off, then show how λ steers the learned selector.
//!
//! Run with: `cargo run --release --example method_tuning`

use elsi::{Elsi, ElsiConfig, Method, MrPool};
use elsi_data::Dataset;
use elsi_spatial::{MappedData, MortonMapper};
use std::sync::Arc;

fn main() {
    let n = 60_000;
    let data = MappedData::build(Dataset::Osm1.generate(n, 5), &MortonMapper);
    println!("Sweeping build-method parameters over {n} OSM-like points\n");
    println!(
        "{:6} {:>14} {:>12} {:>12} {:>12}",
        "method", "param", "|D_S|", "build (ms)", "err span"
    );

    let sweep = |mut cfg: ElsiConfig, m: Method, label: String| {
        cfg.seed = 3;
        let pool = MrPool::generate(&cfg, 1);
        let (built, secs) = elsi::scorer::build_with_method(m, &data, &cfg, &pool, 3);
        println!(
            "{:6} {:>14} {:>12} {:>12.1} {:>12}",
            m.name(),
            label,
            built.stats.training_set_size,
            secs * 1e3,
            built.stats.err_span
        );
    };

    for rho in [0.0005, 0.002, 0.01] {
        sweep(
            ElsiConfig {
                rho,
                ..ElsiConfig::default()
            },
            Method::Sp,
            format!("rho={rho}"),
        );
    }
    for clusters in [50, 200, 800] {
        sweep(
            ElsiConfig {
                clusters,
                ..ElsiConfig::default()
            },
            Method::Cl,
            format!("C={clusters}"),
        );
    }
    for epsilon in [0.5, 0.25, 0.1] {
        sweep(
            ElsiConfig {
                epsilon,
                ..ElsiConfig::default()
            },
            Method::Mr,
            format!("eps={epsilon}"),
        );
    }
    for beta in [8_000, 2_000, 500] {
        sweep(
            ElsiConfig {
                beta,
                ..ElsiConfig::default()
            },
            Method::Rs,
            format!("beta={beta}"),
        );
    }
    for eta in [8, 16] {
        sweep(
            ElsiConfig {
                eta,
                ..ElsiConfig::default()
            },
            Method::Rl,
            format!("eta={eta}"),
        );
    }
    sweep(ElsiConfig::default(), Method::Og, "-".to_string());

    // The learned selector: λ steers build-time vs query-time priority.
    println!("\nTraining the method scorer (small preparation pass)…");
    let mut cfg = ElsiConfig::default();
    cfg.train.epochs = 60;
    let mut elsi = Elsi::new(cfg);
    elsi.prepare_scorer(&[2_000, 10_000], &[1, 4, 12], 9);
    let scorer = elsi.scorer().expect("prepared");
    let _ = Arc::clone(&scorer);

    println!("\nSelected method vs lambda (n = {n}, OSM-like skew):");
    let dist_u = elsi_data::dist_from_uniform(data.keys());
    for lambda in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let m = scorer.select(n, dist_u, lambda, 1.0, &Method::pool());
        println!("  lambda = {lambda:.1} -> {m}");
    }
    println!("\nEq. 2 weighs the predicted costs: larger lambda prioritises build");
    println!("time, smaller lambda prioritises query time (paper Figs. 9 and 11).");
}
