//! Durable sharded serving: save, crash, recover (`DESIGN.md` §14).
//!
//! Builds a learned-routed ZM deployment, checkpoints it into a serving
//! directory, journals a churn wave through the generation's WALs, then
//! "crashes" (drops the deployment without checkpointing) and recovers —
//! verifying the recovered answers match the pre-crash state exactly.
//!
//! ```bash
//! cargo run --release -p elsi-serve --example persistence
//! ```

use elsi::{Elsi, ElsiConfig};
use elsi_indices::{SpatialIndex, ZmIndex};
use elsi_serve::{zm_codec, LearnedRouter, ShardedConfig, ShardedIndex};
use elsi_spatial::Rect;

fn main() {
    let dir = std::env::temp_dir().join(format!("elsi_example_persist_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Build: 2x2 learned-routed ZM shards over clustered data.
    let elsi = Elsi::new(ElsiConfig::default());
    let points = elsi_data::gen::nyc_like(60_000, 42);
    let cfg = ShardedConfig::grid(2, 2);
    let mut deployed = ShardedIndex::zm_learned(points.clone(), &cfg, &elsi);
    println!("built   {} points across 4 shards", deployed.len());

    // Checkpoint: writes generation 1 (router + per-shard snapshots),
    // attaches fresh WALs, and commits via atomic manifest replace.
    let generation = deployed.save(&dir, &zm_codec()).expect("save");
    println!("saved   generation {generation} -> {}", dir.display());

    // Serve on: every batch journals into the shard WALs *before* the
    // in-memory state changes, so the directory always covers the state.
    let churn = elsi_data::stream::churn(&points, 6_000, 0.7, 7);
    deployed.par_apply_updates(&churn);
    let window = Rect::new(0.4, 0.4, 0.6, 0.6);
    let before = deployed.window_query(&window);
    println!(
        "churned {} updates (journaled, not checkpointed)",
        churn.len()
    );

    // Crash: the process dies with the checkpoint one churn wave stale.
    drop(deployed);

    // Recover: manifest -> router state (exact cuts, no refit) -> one
    // parallel snapshot+WAL recovery per shard -> journaling resumes.
    let recovered =
        ShardedIndex::<ZmIndex, LearnedRouter>::open_zm_learned(&dir, &elsi).expect("open");
    let after = recovered.window_query(&window);
    assert_eq!(before, after, "recovery lost journaled updates");
    println!(
        "recovered {} points; window answer identical ({} hits)",
        recovered.len(),
        after.len()
    );

    for entry in std::fs::read_dir(&dir).expect("read_dir") {
        let entry = entry.expect("entry");
        println!(
            "  {:<22} {:>9} bytes",
            entry.file_name().to_string_lossy(),
            entry.metadata().map(|m| m.len()).unwrap_or(0)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
