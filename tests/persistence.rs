//! End-to-end durability: every index kind behind `UpdateProcessor`
//! round-trips through a snapshot, a save that crashes at *any* byte
//! offset is either a clean error or invisible (the survivor still
//! recovers bit-identically), and a WAL torn at any byte offset recovers
//! exactly the journaled prefix.
//!
//! The crash sweeps are deterministic and exhaustive (every offset, not a
//! random sample): the images are small enough that the full matrix runs
//! in well under a second.

use elsi::{
    recover, DeltaOverlay, Elsi, ElsiConfig, OverlayCodec, RebuildFn, RebuildPolicy,
    UpdateProcessor,
};
use elsi_data::stream::Update;
use elsi_data::{gen, Dataset};
use elsi_indices::*;
use elsi_spatial::{Point, Rect};
use elsi_store::{read_wal, FailingWriter, NoCodec, Snapshot, WalWriter};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elsi_persistence_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Order-insensitive query fingerprint plus the full live set (the live
/// set is compared bit-for-bit, so coordinate bit patterns are pinned).
type Fingerprint = (usize, usize, usize, Vec<Point>, Vec<u64>, Vec<u64>);

fn fingerprint<I: SpatialIndex>(proc: &UpdateProcessor<I>) -> Fingerprint {
    let mut window: Vec<u64> = proc
        .index()
        .window_query(&Rect::new(0.15, 0.15, 0.8, 0.8))
        .iter()
        .map(|p| p.id)
        .collect();
    window.sort_unstable();
    window.dedup();
    let knn: Vec<u64> = proc
        .index()
        .knn_query(Point::at(0.5, 0.4), 9)
        .iter()
        .map(|p| p.id)
        .collect();
    (
        proc.live_len(),
        proc.pending_updates(),
        proc.rebuilds(),
        proc.live_points(),
        window,
        knn,
    )
}

/// Saves, reopens via the rebuild path (`NoCodec`), and asserts the
/// recovered processor is indistinguishable from the survivor.
fn assert_roundtrip<I: SpatialIndex>(name: &str, proc: &UpdateProcessor<I>, rebuild: RebuildFn<I>) {
    let path = tmp(&format!("{name}.snap"));
    proc.save_snapshot(&path, &NoCodec).unwrap();
    let opened = UpdateProcessor::open_snapshot(&path, rebuild, RebuildPolicy::Never, &NoCodec)
        .unwrap_or_else(|e| panic!("{name}: open failed: {e}"));
    assert_eq!(fingerprint(proc), fingerprint(&opened), "{name} diverged");
    std::fs::remove_file(&path).ok();
}

type Overlay<I> = DeltaOverlay<I>;

/// The churn applied to exact kinds before saving, so the snapshot holds
/// a non-trivial delta layer (inserts and tombstones) too.
fn churn_in<I: SpatialIndex>(proc: &mut UpdateProcessor<Overlay<I>>, pts: &[Point]) {
    for i in 0..70u64 {
        proc.insert(Point::new(900_000 + i, 0.28 + (i as f64) * 0.004, 0.61));
    }
    for p in pts.iter().take(30) {
        proc.delete(*p);
    }
}

#[test]
fn every_exact_index_kind_round_trips_with_a_pending_delta() {
    let pts = Dataset::Uniform.generate(1_200, 77);
    let elsi = Elsi::new(ElsiConfig::fast_test());

    let grid = || -> RebuildFn<Overlay<GridIndex>> {
        Box::new(|p| DeltaOverlay::new(GridIndex::build(p, &GridConfig { block_size: 50 })))
    };
    let kdb = || -> RebuildFn<Overlay<KdbIndex>> {
        Box::new(|p| DeltaOverlay::new(KdbIndex::build(p, &KdbConfig { leaf_capacity: 50 })))
    };
    let hrr = || -> RebuildFn<Overlay<HrrIndex>> {
        let cfg = HrrConfig {
            leaf_capacity: 50,
            fanout: 8,
        };
        Box::new(move |p| DeltaOverlay::new(HrrIndex::build(p, &cfg)))
    };
    let rstar = || -> RebuildFn<Overlay<RStarIndex>> {
        let cfg = RStarConfig {
            leaf_capacity: 50,
            fanout: 8,
            min_fill: 0.4,
        };
        Box::new(move |p| DeltaOverlay::new(RStarIndex::build(p, &cfg)))
    };
    let zm = || -> RebuildFn<Overlay<ZmIndex>> {
        let b = Arc::new(elsi.builder());
        Box::new(move |p| DeltaOverlay::new(ZmIndex::build(p, &ZmConfig { fanout: 4 }, b.as_ref())))
    };
    let ml = || -> RebuildFn<Overlay<MlIndex>> {
        let b = Arc::new(elsi.builder());
        let cfg = MlConfig {
            pivots: 4,
            ..MlConfig::default()
        };
        Box::new(move |p| DeltaOverlay::new(MlIndex::build(p, &cfg, b.as_ref())))
    };

    macro_rules! check {
        ($name:literal, $mk:expr) => {{
            let mut proc = UpdateProcessor::new(pts.clone(), $mk(), RebuildPolicy::Never, 64);
            churn_in(&mut proc, &pts);
            assert_roundtrip($name, &proc, $mk());
        }};
    }
    check!("grid", grid);
    check!("kdb", kdb);
    check!("hrr", hrr);
    check!("rstar", rstar);
    check!("zm", zm);
    check!("ml", ml);
}

#[test]
fn approximate_index_kinds_round_trip_through_deterministic_rebuilds() {
    // RSMI and LISA are approximate: a base index plus a delta layer does
    // not answer windows identically to a fresh build over the merged
    // live set, so these kinds are snapshotted with the delta folded in
    // (the state every rebuild-policy checkpoint produces). Recovery then
    // re-runs the deterministic seeded build and must agree bit-for-bit.
    let pts = Dataset::Uniform.generate(1_200, 78);
    let elsi = Elsi::new(ElsiConfig::fast_test());

    let rsmi = || -> RebuildFn<Overlay<RsmiIndex>> {
        let b = Arc::new(elsi.builder());
        let cfg = RsmiConfig {
            leaf_capacity: 256,
            fanout: 4,
            ..RsmiConfig::default()
        };
        Box::new(move |p| DeltaOverlay::new(RsmiIndex::build(p, &cfg, b.as_ref())))
    };
    let lisa = || -> RebuildFn<Overlay<LisaIndex>> {
        let b = Arc::new(elsi.builder().for_lisa());
        let cfg = LisaConfig {
            grid: 8,
            shard_size: 150,
            block_size: 50,
        };
        Box::new(move |p| DeltaOverlay::new(LisaIndex::build(p, &cfg, b.as_ref())))
    };

    let proc = UpdateProcessor::new(pts.clone(), rsmi(), RebuildPolicy::Never, 64);
    assert_roundtrip("rsmi", &proc, rsmi());
    let proc = UpdateProcessor::new(pts, lisa(), RebuildPolicy::Never, 64);
    assert_roundtrip("lisa", &proc, lisa());
}

fn grid_rebuild() -> RebuildFn<Overlay<GridIndex>> {
    Box::new(|p| DeltaOverlay::new(GridIndex::build(p, &GridConfig { block_size: 32 })))
}

#[test]
fn a_save_crashing_at_any_byte_offset_is_a_clean_error_or_a_full_image() {
    let mut proc = UpdateProcessor::new(
        gen::uniform(350, 5),
        grid_rebuild(),
        RebuildPolicy::Never,
        32,
    );
    churn_in(&mut proc, &gen::uniform(350, 5));
    let survivor = fingerprint(&proc);
    let writer = proc.snapshot_writer(&NoCodec);
    let image = writer.to_bytes();
    let mem = PathBuf::from("mem");

    for cut in 0..=image.len() {
        // Crash the write at byte `cut` via the fault injector.
        let mut sink = FailingWriter::new(Vec::new(), cut as u64);
        let write_result = writer.write_to(&mut sink);
        let partial = sink.into_inner();
        assert_eq!(partial, image[..cut.min(image.len())], "cut {cut}");
        if cut < image.len() {
            assert!(
                write_result.is_err(),
                "cut {cut}: write must report the fault"
            );
            // What made it to disk never parses into a usable snapshot —
            // a clean error, not a panic and not a silently wrong state.
            match Snapshot::from_vec(partial, &mem) {
                Err(_) => {}
                Ok(_) => panic!("cut {cut}: a truncated image parsed as complete"),
            }
        } else {
            assert!(write_result.is_ok());
            let snap = Snapshot::from_vec(partial, &mem).unwrap();
            let opened = UpdateProcessor::from_snapshot(
                &snap,
                grid_rebuild(),
                RebuildPolicy::Never,
                &NoCodec,
            )
            .unwrap();
            assert_eq!(fingerprint(&opened), survivor);
        }
    }
}

#[test]
fn a_wal_torn_at_any_byte_offset_recovers_exactly_the_journaled_prefix() {
    let snap_path = tmp("sweep.snap");
    let wal_path = tmp("sweep.wal");
    let base = gen::uniform(300, 9);

    // Journal six batches after a snapshot.
    let mut journaled =
        UpdateProcessor::new(base.clone(), grid_rebuild(), RebuildPolicy::Never, 32);
    journaled.save_snapshot(&snap_path, &NoCodec).unwrap();
    journaled.attach_wal(WalWriter::create(&wal_path).unwrap());
    let batches: Vec<Vec<Update>> = (0..6u64)
        .map(|b| {
            (0..10u64)
                .map(|i| {
                    if (b + i) % 4 == 0 {
                        Update::Delete(base[(b * 10 + i) as usize])
                    } else {
                        Update::Insert(Point::new(
                            700_000 + b * 100 + i,
                            0.1 + (b as f64) * 0.1,
                            0.2 + (i as f64) * 0.05,
                        ))
                    }
                })
                .collect()
        })
        .collect();
    for batch in &batches {
        journaled.apply_batch(batch);
    }
    journaled.sync_wal().unwrap();
    assert!(journaled.wal_error().is_none());
    let full_wal = std::fs::read(&wal_path).unwrap();

    // Reference fingerprints: the exact state after replaying k batches.
    let after_k: Vec<Fingerprint> = (0..=batches.len())
        .map(|k| {
            let mut p = UpdateProcessor::open_snapshot(
                &snap_path,
                grid_rebuild(),
                RebuildPolicy::Never,
                &NoCodec,
            )
            .unwrap();
            for batch in &batches[..k] {
                p.apply_batch(batch);
            }
            fingerprint(&p)
        })
        .collect();

    for cut in 0..=full_wal.len() {
        std::fs::write(&wal_path, &full_wal[..cut]).unwrap();
        let result = recover(
            &snap_path,
            &wal_path,
            grid_rebuild(),
            RebuildPolicy::Never,
            &NoCodec,
        );
        if cut < 16 {
            // Not even a WAL header survives: recovery refuses cleanly.
            assert!(result.is_err(), "cut {cut} recovered from a headerless WAL");
            continue;
        }
        let recovered = result.unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        // A tear never invents or corrupts a batch: the recovered state
        // is exactly "snapshot + the longest intact record prefix".
        let replayed = read_wal(&wal_path).unwrap().records.len();
        assert!(replayed <= batches.len(), "cut {cut}");
        assert_eq!(fingerprint(&recovered), after_k[replayed], "cut {cut}");
    }
    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&wal_path).ok();
}

#[test]
fn exact_codec_crash_sweep_preserves_the_delta_layer() {
    // Same any-offset sweep through the ZM fast path: the snapshot holds
    // the encoded index (delta intact), so recovery must reproduce even
    // the unsorted window order bit-for-bit.
    let elsi = Elsi::new(ElsiConfig::fast_test());
    let b = Arc::new(elsi.builder());
    let zm_rebuild = move || -> RebuildFn<Overlay<ZmIndex>> {
        let b = Arc::clone(&b);
        Box::new(move |p| DeltaOverlay::new(ZmIndex::build(p, &ZmConfig { fanout: 4 }, b.as_ref())))
    };
    let pts = gen::uniform(400, 13);
    let mut proc = UpdateProcessor::new(pts.clone(), zm_rebuild(), RebuildPolicy::Never, 1000);
    churn_in(&mut proc, &pts);
    let codec = OverlayCodec::new(ZmStateCodec);
    let writer = proc.snapshot_writer(&codec);
    let image = writer.to_bytes();
    let mem = PathBuf::from("mem");
    let w = Rect::new(0.0, 0.0, 1.0, 1.0);

    // Sample offsets densely near frame boundaries and sparsely inside
    // payloads (the image is ~30 KB; every 97th byte plus both ends).
    let mut cuts: Vec<usize> = (0..image.len()).step_by(97).collect();
    cuts.extend([image.len().saturating_sub(1), image.len()]);
    for cut in cuts {
        let mut sink = FailingWriter::new(Vec::new(), cut as u64);
        let _ = writer.write_to(&mut sink);
        let partial = sink.into_inner();
        match Snapshot::from_vec(partial, &mem) {
            Err(_) => {}
            Ok(snap) => {
                assert_eq!(cut, image.len(), "cut {cut}: partial image parsed");
                let opened = UpdateProcessor::from_snapshot(
                    &snap,
                    zm_rebuild(),
                    RebuildPolicy::Never,
                    &codec,
                )
                .unwrap();
                assert_eq!(fingerprint(&opened), fingerprint(&proc));
                assert_eq!(opened.index().deleted_ids(), proc.index().deleted_ids());
                assert_eq!(
                    opened.index().inserted_points().count(),
                    proc.index().inserted_points().count()
                );
                assert_eq!(
                    opened.index().window_query(&w),
                    proc.index().window_query(&w)
                );
            }
        }
    }
}
