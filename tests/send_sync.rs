//! Compile-time thread-safety guarantees.
//!
//! Parallel index builds share one `ElsiBuilder` (and its MR pool and
//! scorer) across rayon worker threads, and parallel batch queries share
//! the built indices. These assertions fail to *compile* if any of those
//! types loses `Send + Sync`, so a regression cannot reach the test run.

use elsi::{DeltaOverlay, Elsi, ElsiBuilder, MethodChoice, MethodScorer, MrPool, UpdateProcessor};
use elsi_indices::{
    FloodIndex, GridIndex, HrrIndex, KdbIndex, LisaIndex, MlIndex, ModelBuilder, RStarIndex,
    RsmiIndex, SpatialIndex, ZmIndex,
};

fn assert_send_sync<T: Send + Sync + ?Sized>() {}

#[test]
fn elsi_core_types_are_send_sync() {
    assert_send_sync::<Elsi>();
    assert_send_sync::<ElsiBuilder>();
    assert_send_sync::<MethodChoice>();
    assert_send_sync::<MrPool>();
    assert_send_sync::<MethodScorer>();
}

#[test]
fn model_builders_are_shareable_across_threads() {
    // `ModelBuilder: Send + Sync` is a supertrait contract, so the trait
    // object itself is shareable — this is what lets a `&dyn ModelBuilder`
    // cross into rayon workers during a parallel build.
    assert_send_sync::<dyn ModelBuilder>();
    assert_send_sync::<Box<dyn ModelBuilder>>();
    assert_send_sync::<elsi_indices::OgBuilder>();
    assert_send_sync::<elsi_indices::PwlBuilder>();
}

#[test]
fn all_indices_are_send_sync() {
    assert_send_sync::<ZmIndex>();
    assert_send_sync::<MlIndex>();
    assert_send_sync::<RsmiIndex>();
    assert_send_sync::<LisaIndex>();
    assert_send_sync::<GridIndex>();
    assert_send_sync::<KdbIndex>();
    assert_send_sync::<HrrIndex>();
    assert_send_sync::<RStarIndex>();
    assert_send_sync::<FloodIndex>();
}

#[test]
fn update_wrappers_are_send_sync() {
    assert_send_sync::<DeltaOverlay<GridIndex>>();
    assert_send_sync::<DeltaOverlay<ZmIndex>>();
    assert_send_sync::<UpdateProcessor<GridIndex>>();
    // Boxed dynamic indices as used by the CLI and harness.
    assert_send_sync::<Box<dyn SpatialIndex + Send + Sync>>();
}

#[test]
fn ml_primitives_are_send_sync() {
    assert_send_sync::<elsi_ml::Ffn>();
    assert_send_sync::<elsi_ml::TrainConfig>();
}
