//! End-to-end pipeline tests: the full ELSI system (method pool, scorer,
//! build processor) integrated into all four learned spatial indices.

use elsi::{Elsi, ElsiConfig, Method};
use elsi_data::Dataset;
use elsi_indices::{
    LisaConfig, LisaIndex, MlConfig, MlIndex, RsmiConfig, RsmiIndex, SpatialIndex, ZmConfig,
    ZmIndex,
};
use elsi_spatial::Rect;

fn fast_elsi() -> Elsi {
    let mut cfg = ElsiConfig::fast_test();
    cfg.train.epochs = 60;
    Elsi::new(cfg)
}

#[test]
fn all_four_f_variants_answer_point_queries_exactly() {
    let elsi = fast_elsi();
    let pts = Dataset::Osm1.generate(3000, 11);

    let zm = ZmIndex::build(pts.clone(), &ZmConfig { fanout: 4 }, &elsi.builder());
    let ml = MlIndex::build(
        pts.clone(),
        &MlConfig {
            pivots: 4,
            ..MlConfig::default()
        },
        &elsi.builder(),
    );
    let rsmi = RsmiIndex::build(
        pts.clone(),
        &RsmiConfig {
            leaf_capacity: 512,
            fanout: 4,
            ..RsmiConfig::default()
        },
        &elsi.builder(),
    );
    let lisa = LisaIndex::build(
        pts.clone(),
        &LisaConfig {
            grid: 8,
            shard_size: 200,
            block_size: 50,
        },
        &elsi.builder().for_lisa(),
    );

    let indices: [&dyn SpatialIndex; 4] = [&zm, &ml, &rsmi, &lisa];
    for idx in indices {
        for p in pts.iter().step_by(23) {
            assert!(
                idx.point_query(*p).is_some(),
                "{}-F lost point {p} (exactness guarantee of Algorithm 1)",
                idx.name()
            );
        }
    }
}

#[test]
fn learned_selector_drives_the_build() {
    let mut elsi = fast_elsi();
    elsi.prepare_scorer(&[500], &[1, 6], 5);
    let pts = Dataset::Skewed.generate(2000, 3);
    let builder = elsi.builder();
    let idx = ZmIndex::build(pts, &ZmConfig { fanout: 2 }, &builder);
    assert_eq!(idx.len(), 2000);
    // The selector must have been consulted once per model (root + leaves).
    let chosen = builder.chosen_methods();
    assert_eq!(chosen.len(), 3);
    assert!(chosen.iter().all(|m| Method::pool().contains(m)));
}

#[test]
fn elsi_builder_is_much_faster_than_og_on_reduced_methods() {
    let elsi = fast_elsi();
    let pts = Dataset::Uniform.generate(20_000, 7);

    let (_fast, sp_time) = elsi_indices::timed(|| {
        ZmIndex::build(
            pts.clone(),
            &ZmConfig { fanout: 2 },
            &elsi.fixed_builder(Method::Sp),
        )
    });

    let (_slow, og_time) = elsi_indices::timed(|| {
        ZmIndex::build(
            pts,
            &ZmConfig { fanout: 2 },
            &elsi.fixed_builder(Method::Og),
        )
    });

    assert!(
        sp_time.as_secs_f64() * 2.0 < og_time.as_secs_f64(),
        "SP {sp_time:?} must be well below OG {og_time:?}"
    );
}

#[test]
fn window_queries_work_through_the_full_stack() {
    let elsi = fast_elsi();
    let pts = Dataset::Nyc.generate(4000, 13);
    let idx = MlIndex::build(
        pts.clone(),
        &MlConfig {
            pivots: 4,
            ..MlConfig::default()
        },
        &elsi.builder(),
    );
    // ML-F stays exact (paper §VII-G2).
    for seed in 0..5u64 {
        let c = pts[(seed as usize * 619) % pts.len()];
        let w = Rect::window_around(c, 0.005);
        let mut got: Vec<u64> = idx.window_query(&w).iter().map(|p| p.id).collect();
        got.sort_unstable();
        got.dedup();
        let mut want: Vec<u64> = pts.iter().filter(|p| w.contains(p)).map(|p| p.id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn every_dataset_generator_feeds_the_pipeline() {
    let elsi = fast_elsi();
    for ds in Dataset::all() {
        let pts = ds.generate(800, 1);
        let idx = ZmIndex::build(pts.clone(), &ZmConfig { fanout: 2 }, &elsi.builder());
        assert_eq!(idx.len(), 800, "{ds}");
        assert!(idx.point_query(pts[400]).is_some(), "{ds}");
    }
}
