//! Update-path integration: built-in index insertion procedures, the
//! default delta overlay, the update processor's drift tracking, and
//! rebuild triggering (paper §IV-B2 and §VII-H).

use elsi::{
    DeltaOverlay, Elsi, ElsiConfig, RebuildFeatures, RebuildPolicy, RebuildPredictor,
    RebuildSample, UpdateOutcome, UpdateProcessor,
};
use elsi_data::Dataset;
use elsi_indices::*;
use elsi_spatial::{Point, Rect};

#[test]
fn skewed_insertions_degrade_then_rebuild_recovers_structure() {
    // Mirrors Fig. 15's setup in miniature: a small base set, then skewed
    // insertions; a rebuild must restore the structure.
    let elsi = Elsi::new(ElsiConfig::fast_test());
    let base = Dataset::Osm1.generate(1500, 1);
    let mr = elsi.mr_pool();
    let cfg = elsi.config().clone();
    let rebuild = move |pts: Vec<Point>| {
        let builder = elsi::ElsiBuilder::fixed(elsi::Method::Rs, cfg.clone(), mr.clone());
        RsmiIndex::build(
            pts,
            &RsmiConfig {
                leaf_capacity: 256,
                fanout: 4,
                ..RsmiConfig::default()
            },
            &builder,
        )
    };
    let policy = RebuildPolicy::Threshold {
        max_drift: 0.15,
        max_ratio: 10.0,
    };
    let mut proc = UpdateProcessor::new(base, Box::new(rebuild), policy, 64);

    let inserts = Dataset::Skewed.generate(1200, 2);
    let mut rebuilt = false;
    for (i, mut p) in inserts.into_iter().enumerate() {
        p.id = 1_000_000 + i as u64;
        p.x *= 0.05; // squash into a corner: heavy CDF drift
        p.y *= 0.05;
        if proc.insert(p) == UpdateOutcome::Rebuilt {
            rebuilt = true;
        }
    }
    assert!(rebuilt, "drift threshold never triggered a rebuild");
    assert_eq!(proc.len(), 2700);
    // Everything still findable after the rebuild.
    assert!(
        proc.point_query(Point::new(1_000_000, 0.0, 0.0)).is_some() || proc.index().len() == 2700
    );
}

#[test]
fn delta_overlay_equivalent_to_rebuilt_ground_truth() {
    let pts = Dataset::Uniform.generate(1000, 3);
    let base = HrrIndex::build(pts.clone(), &HrrConfig::default());
    let mut overlay = DeltaOverlay::new(base);

    let mut live = pts.clone();
    // Apply a mixed update stream.
    for i in 0..200u64 {
        let p = Point::new(
            50_000 + i,
            (i as f64 * 0.00437) % 1.0,
            (i as f64 * 0.00911) % 1.0,
        );
        overlay.insert(p);
        live.push(p);
    }
    for i in (0..400).step_by(7) {
        assert!(overlay.delete(pts[i]));
        live.retain(|p| p.id != pts[i].id);
    }
    assert_eq!(overlay.len(), live.len());

    for w in [Rect::new(0.1, 0.1, 0.4, 0.4), Rect::new(0.0, 0.5, 1.0, 1.0)] {
        let mut got: Vec<u64> = overlay.window_query(&w).iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = live
            .iter()
            .filter(|p| w.contains(p))
            .map(|p| p.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
    // kNN against brute force over the live set.
    let q = Point::at(0.33, 0.66);
    let got = overlay.knn_query(q, 5);
    let mut want = live.clone();
    want.sort_by(|a, b| q.dist2(a).total_cmp(&q.dist2(b)));
    for (g, w) in got.iter().zip(&want) {
        assert!((q.dist(g) - q.dist(w)).abs() < 1e-12);
    }
}

#[test]
fn built_in_insertions_stay_queryable_across_indices() {
    let elsi = Elsi::new(ElsiConfig::fast_test());
    let pts = Dataset::Uniform.generate(800, 5);
    let mut zm = ZmIndex::build(pts.clone(), &ZmConfig { fanout: 2 }, &elsi.builder());
    let mut ml = MlIndex::build(
        pts.clone(),
        &MlConfig {
            pivots: 4,
            ..MlConfig::default()
        },
        &elsi.builder(),
    );
    let mut lisa = LisaIndex::build(
        pts.clone(),
        &LisaConfig {
            grid: 8,
            shard_size: 100,
            block_size: 25,
        },
        &elsi.builder().for_lisa(),
    );
    let mut grid = GridIndex::build(pts.clone(), &GridConfig::default());
    let mut rstar = RStarIndex::build(pts, &RStarConfig::default());

    let stream = Dataset::Nyc.generate(300, 9);
    for (i, mut p) in stream.into_iter().enumerate() {
        p.id = 70_000 + i as u64;
        zm.insert(p);
        ml.insert(p);
        lisa.insert(p);
        grid.insert(p);
        rstar.insert(p);
        assert!(zm.point_query(p).is_some(), "ZM lost insert {i}");
        assert!(ml.point_query(p).is_some(), "ML lost insert {i}");
        assert!(lisa.point_query(p).is_some(), "LISA lost insert {i}");
        assert!(grid.point_query(p).is_some(), "Grid lost insert {i}");
        assert!(rstar.point_query(p).is_some(), "RR* lost insert {i}");
    }
}

#[test]
fn moving_hotspot_stream_keeps_indices_consistent() {
    use elsi_data::stream::{moving_hotspot_insertions, Update};
    let base = Dataset::Uniform.generate(800, 2);
    let elsi = Elsi::new(ElsiConfig::fast_test());
    let mut idx = elsi_indices::FloodIndex::build(
        base.clone(),
        &elsi_indices::FloodConfig { columns: 8 },
        &elsi.builder(),
    );
    let mut live = base;
    for u in moving_hotspot_insertions(600, 0.05, 5) {
        if let Update::Insert(p) = u {
            idx.insert(p);
            live.push(p);
        }
    }
    assert_eq!(idx.len(), live.len());
    // Spot-check windows along the hotspot track stay exact.
    for c in [0.2, 0.5, 0.8] {
        let w = Rect::new(c - 0.05, c - 0.05, c + 0.05, c + 0.05);
        let mut got: Vec<u64> = idx.window_query(&w).iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = live
            .iter()
            .filter(|p| w.contains(p))
            .map(|p| p.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "window around {c}");
    }
}

#[test]
fn churn_stream_through_update_processor() {
    use elsi_data::stream::{churn, Update};
    let base = Dataset::Osm1.generate(700, 9);
    let stream = churn(&base, 700, 0.6, 3);
    let mut proc = UpdateProcessor::new(
        base.clone(),
        Box::new(|pts| GridIndex::build(pts, &GridConfig::default())),
        RebuildPolicy::Threshold {
            max_drift: 0.2,
            max_ratio: 1.0,
        },
        64,
    );
    let mut live: std::collections::HashMap<u64, Point> = base.iter().map(|p| (p.id, *p)).collect();
    for u in stream {
        match u {
            Update::Insert(p) => {
                proc.insert(p);
                live.insert(p.id, p);
            }
            Update::Delete(p) => {
                proc.delete(p);
                live.remove(&p.id);
            }
        }
    }
    assert_eq!(proc.len(), live.len());
    // Every live point findable; every deleted point gone (sampled).
    for (i, p) in live.values().enumerate() {
        if i % 13 == 0 {
            assert!(proc.point_query(*p).is_some(), "live point {p} lost");
        }
    }
    for p in base.iter().step_by(17) {
        let expect = live.contains_key(&p.id);
        assert_eq!(proc.point_query(*p).is_some(), expect, "point {p}");
    }
}

#[test]
fn learned_rebuild_policy_fires_on_drift() {
    // Train the predictor on a clean synthetic rule, then ensure the
    // update processor consults it.
    let mut samples = Vec::new();
    for i in 0..8 {
        for j in 0..8 {
            let sim = 0.6 + 0.05 * i as f64;
            let ratio = 0.1 * j as f64;
            samples.push(RebuildSample {
                features: RebuildFeatures {
                    n: 10_000,
                    dist_u: 0.2,
                    depth: 3,
                    update_ratio: ratio,
                    drift_sim: sim,
                },
                should_rebuild: sim < 0.85,
            });
        }
    }
    let predictor = RebuildPredictor::train(&samples, 7);
    let policy = RebuildPolicy::Learned(predictor);

    let base = Dataset::Uniform.generate(600, 1);
    let mut proc = UpdateProcessor::new(
        base,
        Box::new(|pts| GridIndex::build(pts, &GridConfig::default())),
        policy,
        32,
    );
    let mut rebuilt = false;
    for i in 0..1500u64 {
        // All inserts at one spot: drift_sim collapses.
        if proc.insert(Point::new(90_000 + i, 0.02, 0.02)) == UpdateOutcome::Rebuilt {
            rebuilt = true;
            break;
        }
    }
    assert!(rebuilt, "learned policy never fired under extreme drift");
}
