//! Property-based tests (proptest) over the core invariants of the stack:
//! curve bijectivity, KS-distance bounds, the systematic-sampling gap bound
//! (§V-A1), quadtree partition completeness, rank-model search-range
//! correctness, and window-query exactness of the exact indices.

use elsi_data::{cdf, sample};
use elsi_indices::{
    build_on_training_set, GridConfig, GridIndex, HrrConfig, HrrIndex, SpatialIndex,
};
use elsi_ml::TrainConfig;
use elsi_spatial::curve::{hilbert, morton};
use elsi_spatial::{quadtree_partition, Point, Rect};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn morton_roundtrips(x in any::<u32>(), y in any::<u32>()) {
        let code = morton::morton_encode(x, y);
        prop_assert_eq!(morton::morton_decode(code), (x, y));
    }

    #[test]
    fn morton_monotone_under_dominance(
        x1 in 0u32..1000, y1 in 0u32..1000, dx in 0u32..1000, dy in 0u32..1000
    ) {
        // If (x1,y1) ≤ (x2,y2) componentwise, the Z-value cannot decrease —
        // the property ZM's exact window query relies on.
        let a = morton::morton_encode(x1, y1);
        let b = morton::morton_encode(x1 + dx, y1 + dy);
        prop_assert!(a <= b);
    }

    #[test]
    fn hilbert_roundtrips(x in 0u32..(1 << 16), y in 0u32..(1 << 16)) {
        let d = hilbert::hilbert_encode(16, x, y);
        prop_assert_eq!(hilbert::hilbert_decode(16, d), (x, y));
    }

    #[test]
    fn ks_distance_bounded_and_zero_on_self(mut keys in prop::collection::vec(0.0f64..1.0, 1..200)) {
        keys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let d = cdf::ks_distance(&keys, &keys);
        prop_assert!(d >= 0.0 && d < 1e-9);
        let uniform: Vec<f64> = (0..500).map(|i| (i as f64 + 0.5) / 500.0).collect();
        let d2 = cdf::ks_distance(&keys, &uniform);
        prop_assert!((0.0..=1.0).contains(&d2));
    }

    #[test]
    fn systematic_sampling_gap_bound(n in 1usize..2000, rho_m in 1usize..100) {
        // Pigeonhole bound of §V-A1: every rank within ⌊1/ρ⌋ − 1 of a sample.
        let rho = rho_m as f64 / 100.0;
        let idx = sample::systematic_indices(n, rho);
        let bound = (1.0 / rho).floor() as usize - 1;
        for i in 0..n {
            let nearest = idx.iter().map(|&j| j.abs_diff(i)).min().unwrap();
            prop_assert!(nearest <= bound.max(0), "rank {} gap {} bound {}", i, nearest, bound);
        }
    }

    #[test]
    fn quadtree_partition_is_complete_and_disjoint(
        pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..300),
        beta in 1usize..50
    ) {
        let points: Vec<Point> =
            pts.iter().enumerate().map(|(i, &(x, y))| Point::new(i as u64, x, y)).collect();
        let leaves = quadtree_partition(&points, beta, Rect::unit());
        let mut seen = vec![false; points.len()];
        for leaf in &leaves {
            prop_assert!(!leaf.indices.is_empty());
            for &i in &leaf.indices {
                prop_assert!(!seen[i], "point {} appears twice", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some point dropped");
    }

    #[test]
    fn rank_model_search_range_contains_every_rank(
        raw in prop::collection::vec(0.0f64..1.0, 2..150)
    ) {
        let mut keys = raw;
        keys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // A deliberately under-trained model: bounds must still guarantee
        // containment because they are derived empirically.
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let built = build_on_training_set(&keys, &keys, 4, &cfg, 1, "OG", Duration::ZERO);
        for (i, &k) in keys.iter().enumerate() {
            let (lo, hi) = built.model.search_range(k);
            prop_assert!(lo <= i && i < hi, "rank {} outside [{}, {})", i, lo, hi);
        }
    }

    #[test]
    fn exact_indices_agree_with_brute_force_windows(
        pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..250),
        (wx, wy, ww, wh) in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.5, 0.0f64..0.5)
    ) {
        let points: Vec<Point> =
            pts.iter().enumerate().map(|(i, &(x, y))| Point::new(i as u64, x, y)).collect();
        let w = Rect::new(wx, wy, (wx + ww).min(1.0), (wy + wh).min(1.0));
        let mut want: Vec<u64> =
            points.iter().filter(|p| w.contains(p)).map(|p| p.id).collect();
        want.sort_unstable();

        let grid = GridIndex::build(points.clone(), &GridConfig { block_size: 16 });
        let mut got: Vec<u64> = grid.window_query(&w).iter().map(|p| p.id).collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &want);

        let hrr = HrrIndex::build(points, &HrrConfig { leaf_capacity: 16, fanout: 4 });
        let mut got: Vec<u64> = hrr.window_query(&w).iter().map(|p| p.id).collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &want);
    }

    #[test]
    fn drift_tracker_dist_is_bounded(
        base in prop::collection::vec(0.0f64..1.0, 1..200),
        adds in prop::collection::vec(0.0f64..1.0, 0..200)
    ) {
        let mut t = elsi::DriftTracker::new(base.iter().copied(), 64);
        for a in &adds {
            t.add(*a);
        }
        let d = t.dist();
        prop_assert!((0.0..=1.0).contains(&d));
        t.rebaseline();
        prop_assert!(t.dist() < 1e-12);
    }
}
