//! Property-based tests (proptest) over the core invariants of the stack:
//! curve bijectivity, KS-distance bounds, the systematic-sampling gap bound
//! (§V-A1), quadtree partition completeness, rank-model search-range
//! correctness, window-query exactness of the exact indices, and the
//! [`elsi::DeltaOverlay`] last-write-wins id semantics against a
//! brute-force oracle.

use elsi_data::{cdf, sample};
use elsi_indices::{
    build_on_training_set, GridConfig, GridIndex, HrrConfig, HrrIndex, SpatialIndex,
};
use elsi_ml::TrainConfig;
use elsi_spatial::curve::{hilbert, morton};
use elsi_spatial::{quadtree_partition, Point, Rect};
use proptest::prelude::*;
use std::time::Duration;

/// Snaps a raw unit-square coordinate so the boundary values 0.0 and 1.0
/// occur regularly — the batch-equivalence oracles should exercise points
/// on shard/grid edges, not just the interior.
fn snap(v: f64) -> f64 {
    if v < 0.03 {
        0.0
    } else if v > 0.97 {
        1.0
    } else {
        v
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn morton_roundtrips(x in any::<u32>(), y in any::<u32>()) {
        let code = morton::morton_encode(x, y);
        prop_assert_eq!(morton::morton_decode(code), (x, y));
    }

    #[test]
    fn morton_monotone_under_dominance(
        x1 in 0u32..1000, y1 in 0u32..1000, dx in 0u32..1000, dy in 0u32..1000
    ) {
        // If (x1,y1) ≤ (x2,y2) componentwise, the Z-value cannot decrease —
        // the property ZM's exact window query relies on.
        let a = morton::morton_encode(x1, y1);
        let b = morton::morton_encode(x1 + dx, y1 + dy);
        prop_assert!(a <= b);
    }

    #[test]
    fn hilbert_roundtrips(x in 0u32..(1 << 16), y in 0u32..(1 << 16)) {
        let d = hilbert::hilbert_encode(16, x, y);
        prop_assert_eq!(hilbert::hilbert_decode(16, d), (x, y));
    }

    #[test]
    fn ks_distance_bounded_and_zero_on_self(mut keys in prop::collection::vec(0.0f64..1.0, 1..200)) {
        keys.sort_by(|a, b| a.total_cmp(b));
        let d = cdf::ks_distance(&keys, &keys);
        prop_assert!((0.0..1e-9).contains(&d));
        let uniform: Vec<f64> = (0..500).map(|i| (i as f64 + 0.5) / 500.0).collect();
        let d2 = cdf::ks_distance(&keys, &uniform);
        prop_assert!((0.0..=1.0).contains(&d2));
    }

    #[test]
    fn systematic_sampling_gap_bound(n in 1usize..2000, rho_m in 1usize..100) {
        // Pigeonhole bound of §V-A1: every rank within ⌊1/ρ⌋ − 1 of a sample.
        let rho = rho_m as f64 / 100.0;
        let idx = sample::systematic_indices(n, rho);
        let bound = (1.0 / rho).floor() as usize - 1;
        for i in 0..n {
            let nearest = idx.iter().map(|&j| j.abs_diff(i)).min().unwrap();
            prop_assert!(nearest <= bound, "rank {} gap {} bound {}", i, nearest, bound);
        }
    }

    #[test]
    fn quadtree_partition_is_complete_and_disjoint(
        pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..300),
        beta in 1usize..50
    ) {
        let points: Vec<Point> =
            pts.iter().enumerate().map(|(i, &(x, y))| Point::new(i as u64, x, y)).collect();
        let leaves = quadtree_partition(&points, beta, Rect::unit());
        let mut seen = vec![false; points.len()];
        for leaf in &leaves {
            prop_assert!(!leaf.indices.is_empty());
            for &i in &leaf.indices {
                prop_assert!(!seen[i], "point {} appears twice", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some point dropped");
    }

    #[test]
    fn rank_model_search_range_contains_every_rank(
        raw in prop::collection::vec(0.0f64..1.0, 2..150)
    ) {
        let mut keys = raw;
        keys.sort_by(|a, b| a.total_cmp(b));
        // A deliberately under-trained model: bounds must still guarantee
        // containment because they are derived empirically.
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let built = build_on_training_set(&keys, &keys, 4, &cfg, 1, "OG", Duration::ZERO);
        for (i, &k) in keys.iter().enumerate() {
            let (lo, hi) = built.model.search_range(k);
            prop_assert!(lo <= i && i < hi, "rank {} outside [{}, {})", i, lo, hi);
        }
    }

    #[test]
    fn exact_indices_agree_with_brute_force_windows(
        pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..250),
        (wx, wy, ww, wh) in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.5, 0.0f64..0.5)
    ) {
        let points: Vec<Point> =
            pts.iter().enumerate().map(|(i, &(x, y))| Point::new(i as u64, x, y)).collect();
        let w = Rect::new(wx, wy, (wx + ww).min(1.0), (wy + wh).min(1.0));
        let mut want: Vec<u64> =
            points.iter().filter(|p| w.contains(p)).map(|p| p.id).collect();
        want.sort_unstable();

        let grid = GridIndex::build(points.clone(), &GridConfig { block_size: 16 });
        let mut got: Vec<u64> = grid.window_query(&w).iter().map(|p| p.id).collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &want);

        let hrr = HrrIndex::build(points, &HrrConfig { leaf_capacity: 16, fanout: 4 });
        let mut got: Vec<u64> = hrr.window_query(&w).iter().map(|p| p.id).collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &want);
    }

    #[test]
    fn delta_overlay_matches_id_oracle(
        base_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..60),
        ops in prop::collection::vec((0u8..4, 0u64..40, 0.0f64..1.0, 0.0f64..1.0), 0..120),
        (wx, wy, ww, wh) in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..0.6, 0.0f64..0.6)
    ) {
        // Random mixed insert/delete/query workloads against a brute-force
        // id → point oracle. Op ids are drawn from a range overlapping the
        // base ids, so overwrites of base points (id collisions) are
        // exercised: the overlay must keep exactly one live copy per id,
        // with the last write winning.
        use std::collections::BTreeMap;
        let points: Vec<Point> = base_pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(i as u64, x, y))
            .collect();
        let mut live: BTreeMap<u64, Point> = points.iter().map(|p| (p.id, *p)).collect();
        let base = GridIndex::build(points, &GridConfig { block_size: 16 });
        let mut overlay = elsi::DeltaOverlay::new(base);

        for &(op, id, x, y) in &ops {
            match op {
                // Two insert arms: overwrites and fresh ids both happen.
                0 | 1 => {
                    let p = Point::new(id, x, y);
                    overlay.insert(p);
                    live.insert(id, p);
                }
                // Delete the live copy of an id (base, delta, or overwrite).
                2 => {
                    if let Some(p) = live.get(&id).copied() {
                        prop_assert!(overlay.delete(p), "live id {} not deleted", id);
                        live.remove(&id);
                    }
                }
                // Deleting a dead id must report not-found.
                _ => {
                    if !live.contains_key(&id) {
                        prop_assert!(!overlay.delete(Point::new(id, x, y)));
                    }
                }
            }
            prop_assert_eq!(overlay.len(), live.len(), "len after op {:?}", (op, id));
        }

        // Every live point is found at its coordinates under its id.
        for p in live.values() {
            prop_assert_eq!(overlay.point_query(*p).map(|g| g.id), Some(p.id));
        }

        // Window query agrees with the oracle, one copy per id.
        let w = Rect::new(wx, wy, (wx + ww).min(1.0), (wy + wh).min(1.0));
        let mut got: Vec<u64> = overlay.window_query(&w).iter().map(|p| p.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> =
            live.values().filter(|p| w.contains(p)).map(|p| p.id).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);

        // kNN distances agree with brute force over the live set.
        let q = Point::at(0.5, 0.5);
        let got = overlay.knn_query(q, 5);
        prop_assert_eq!(got.len(), 5usize.min(live.len()));
        let mut dists: Vec<f64> = live.values().map(|p| q.dist(p)).collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        for (g, d) in got.iter().zip(&dists) {
            prop_assert!((q.dist(g) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn overlay_batch_ingestion_is_bit_identical_to_sequential(
        base_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..60),
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..30, 0.0f64..1.0, 0.0f64..1.0), 0..120
        )
    ) {
        // The tentpole equivalence oracle: `DeltaOverlay::apply_batch` must
        // be indistinguishable from folding the same updates one at a time
        // — per-op outcome flags, live size, delta size and the full
        // canonical window result, under random interleavings of inserts,
        // overwrites (duplicate ids in the same batch, ids colliding with
        // base points) and deletes, including boundary coordinates.
        let points: Vec<Point> = base_pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(i as u64, x, y))
            .collect();
        let batch: Vec<elsi::Update> = ops
            .iter()
            .map(|&(is_insert, id, x, y)| {
                let p = Point::new(id, snap(x), snap(y));
                if is_insert { elsi::Update::Insert(p) } else { elsi::Update::Delete(p) }
            })
            .collect();
        let build = || elsi::DeltaOverlay::new(
            GridIndex::build(points.clone(), &GridConfig { block_size: 16 })
        );

        let mut bulk = build();
        let bulk_flags = bulk.apply_batch(&batch);
        let mut seq = build();
        let seq_flags = elsi::ingest_batch_sequential(&mut seq, &batch);

        prop_assert_eq!(bulk_flags, seq_flags);
        prop_assert_eq!(bulk.len(), seq.len());
        prop_assert_eq!(bulk.delta_len(), seq.delta_len());
        prop_assert_eq!(bulk.window_query(&Rect::unit()), seq.window_query(&Rect::unit()));
        // Random-probe agreement on point queries (delete/insert of the
        // same id inside one batch must resolve identically).
        for &(_, id, x, y) in ops.iter().take(20) {
            let p = Point::new(id, snap(x), snap(y));
            prop_assert_eq!(bulk.point_query(p), seq.point_query(p));
        }
    }

    #[test]
    fn processor_batch_ingestion_matches_sequential_under_never(
        base_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..50),
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..25, 0.0f64..1.0, 0.0f64..1.0), 0..100
        ),
        chunk in 1usize..17
    ) {
        // At the lifecycle level (live set, drift sketch, counters) the
        // batch path must match per-op application exactly when the policy
        // never fires, for every chunking of the stream.
        let points: Vec<Point> = base_pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(i as u64, x, y))
            .collect();
        let stream: Vec<elsi::Update> = ops
            .iter()
            .map(|&(is_insert, id, x, y)| {
                let p = Point::new(id, snap(x), snap(y));
                if is_insert { elsi::Update::Insert(p) } else { elsi::Update::Delete(p) }
            })
            .collect();
        let make = || {
            let pts = points.clone();
            let rebuild: elsi::RebuildFn<elsi::DeltaOverlay<GridIndex>> = Box::new(|p| {
                elsi::DeltaOverlay::new(GridIndex::build(p, &GridConfig { block_size: 16 }))
            });
            elsi::UpdateProcessor::new(pts, rebuild, elsi::RebuildPolicy::Never, 8)
        };

        let mut batched = make();
        let mut applied = 0usize;
        for c in stream.chunks(chunk) {
            applied += batched.apply_batch(c).applied;
        }
        let mut seq = make();
        let mut seq_applied = 0usize;
        for &u in &stream {
            match u {
                elsi::Update::Insert(p) => {
                    seq.insert(p);
                    seq_applied += 1;
                }
                elsi::Update::Delete(p) => {
                    if SpatialIndex::delete(&mut seq, p) {
                        seq_applied += 1;
                    }
                }
            }
        }
        prop_assert_eq!(applied, seq_applied);
        prop_assert_eq!(batched.len(), seq.len());
        prop_assert_eq!(batched.pending_updates(), seq.pending_updates());
        prop_assert_eq!(batched.window_query(&Rect::unit()), seq.window_query(&Rect::unit()));
    }

    #[test]
    fn aligned_batches_reproduce_sequential_rebuild_cadence(
        base_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..40),
        inserts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..80),
        f_u in 1usize..12
    ) {
        // When batch boundaries align with the policy cadence (insert-only
        // chunks of exactly f_u), once-per-batch checking is bit-identical
        // to per-f_u checking: same rebuild count, same post-rebuild index.
        let points: Vec<Point> = base_pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(i as u64, x, y))
            .collect();
        let stream: Vec<elsi::Update> = inserts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| elsi::Update::Insert(Point::new(1_000 + i as u64, snap(x), snap(y))))
            .collect();
        let make = || {
            let pts = points.clone();
            let rebuild: elsi::RebuildFn<elsi::DeltaOverlay<GridIndex>> = Box::new(|p| {
                elsi::DeltaOverlay::new(GridIndex::build(p, &GridConfig { block_size: 16 }))
            });
            let policy = elsi::RebuildPolicy::Threshold { max_drift: 0.2, max_ratio: 4.0 };
            elsi::UpdateProcessor::new(pts, rebuild, policy, f_u)
        };

        let mut batched = make();
        for c in stream.chunks(f_u) {
            batched.apply_batch(c);
        }
        let mut seq = make();
        for &u in &stream {
            if let elsi::Update::Insert(p) = u {
                seq.insert(p);
            }
        }
        prop_assert_eq!(batched.rebuilds(), seq.rebuilds());
        prop_assert_eq!(batched.pending_updates(), seq.pending_updates());
        prop_assert_eq!(batched.window_query(&Rect::unit()), seq.window_query(&Rect::unit()));
    }

    #[test]
    fn drift_tracker_dist_is_bounded(
        base in prop::collection::vec(0.0f64..1.0, 1..200),
        adds in prop::collection::vec(0.0f64..1.0, 0..200)
    ) {
        let mut t = elsi::DriftTracker::new(base.iter().copied(), 64);
        for a in &adds {
            t.add(*a);
        }
        let d = t.dist();
        prop_assert!((0.0..=1.0).contains(&d));
        t.rebaseline();
        prop_assert!(t.dist() < 1e-12);
    }
}
