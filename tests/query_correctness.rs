//! Cross-index query correctness: every index (learned and traditional) is
//! checked against brute force on shared workloads. Exact indices must
//! match exactly; RSMI and LISA (approximate by design, paper §VII-G2) must
//! return no false positives and keep recall above 90%.

use elsi::{Elsi, ElsiConfig};
use elsi_data::{gen, Dataset};
use elsi_indices::*;
use elsi_spatial::{Point, Rect};

const N: usize = 2500;

struct Workbench {
    pts: Vec<Point>,
    windows: Vec<Rect>,
    knn_qs: Vec<Point>,
}

fn workbench(ds: Dataset) -> Workbench {
    let pts = ds.generate(N, 77);
    let windows = gen::window_queries(&pts, 15, 0.004, 5);
    let knn_qs = gen::knn_queries(&pts, 10, 6);
    Workbench {
        pts,
        windows,
        knn_qs,
    }
}

fn brute_window(pts: &[Point], w: &Rect) -> Vec<u64> {
    let mut ids: Vec<u64> = pts.iter().filter(|p| w.contains(p)).map(|p| p.id).collect();
    ids.sort_unstable();
    ids
}

fn brute_knn_radius(pts: &[Point], q: Point, k: usize) -> f64 {
    let mut d: Vec<f64> = pts.iter().map(|p| q.dist2(p)).collect();
    d.sort_by(|a, b| a.total_cmp(b));
    d[k - 1].sqrt()
}

fn check_exact(idx: &dyn SpatialIndex, wb: &Workbench) {
    for p in wb.pts.iter().step_by(31) {
        assert!(idx.point_query(*p).is_some(), "{}: lost {p}", idx.name());
    }
    for w in &wb.windows {
        let mut got: Vec<u64> = idx.window_query(w).iter().map(|p| p.id).collect();
        got.sort_unstable();
        got.dedup();
        assert_eq!(
            got,
            brute_window(&wb.pts, w),
            "{}: window mismatch",
            idx.name()
        );
    }
    for q in &wb.knn_qs {
        let got = idx.knn_query(*q, 10);
        assert_eq!(got.len(), 10, "{}", idx.name());
        let exact_r = brute_knn_radius(&wb.pts, *q, 10);
        let got_r = q.dist(&got[9]);
        assert!(
            (got_r - exact_r).abs() < 1e-9,
            "{}: kNN radius {got_r} vs exact {exact_r}",
            idx.name()
        );
    }
}

fn check_approximate(idx: &dyn SpatialIndex, wb: &Workbench, min_recall: f64) {
    for p in wb.pts.iter().step_by(31) {
        assert!(idx.point_query(*p).is_some(), "{}: lost {p}", idx.name());
    }
    let mut want_total = 0usize;
    let mut got_total = 0usize;
    for w in &wb.windows {
        let want = brute_window(&wb.pts, w);
        let got = idx.window_query(w);
        assert!(
            got.iter().all(|p| w.contains(p)),
            "{}: false positive",
            idx.name()
        );
        want_total += want.len();
        got_total += got.len().min(want.len());
    }
    let recall = got_total as f64 / want_total.max(1) as f64;
    assert!(
        recall >= min_recall,
        "{}: window recall {recall}",
        idx.name()
    );
}

#[test]
fn traditional_indices_are_exact_on_all_datasets() {
    for ds in [Dataset::Uniform, Dataset::Skewed, Dataset::Nyc] {
        let wb = workbench(ds);
        check_exact(
            &GridIndex::build(wb.pts.clone(), &GridConfig { block_size: 50 }),
            &wb,
        );
        check_exact(
            &KdbIndex::build(wb.pts.clone(), &KdbConfig { leaf_capacity: 50 }),
            &wb,
        );
        check_exact(
            &HrrIndex::build(
                wb.pts.clone(),
                &HrrConfig {
                    leaf_capacity: 50,
                    fanout: 8,
                },
            ),
            &wb,
        );
        check_exact(
            &RStarIndex::build(
                wb.pts.clone(),
                &RStarConfig {
                    leaf_capacity: 50,
                    fanout: 8,
                    min_fill: 0.4,
                },
            ),
            &wb,
        );
    }
}

#[test]
fn zm_and_ml_are_exact() {
    let elsi = Elsi::new(ElsiConfig::fast_test());
    for ds in [Dataset::Uniform, Dataset::Osm1] {
        let wb = workbench(ds);
        check_exact(
            &ZmIndex::build(wb.pts.clone(), &ZmConfig { fanout: 4 }, &elsi.builder()),
            &wb,
        );
        check_exact(
            &MlIndex::build(
                wb.pts.clone(),
                &MlConfig {
                    pivots: 4,
                    ..MlConfig::default()
                },
                &elsi.builder(),
            ),
            &wb,
        );
    }
}

#[test]
fn rsmi_and_lisa_no_false_positives_and_high_recall() {
    let elsi = Elsi::new(ElsiConfig::fast_test());
    for ds in [Dataset::Uniform, Dataset::Osm1] {
        let wb = workbench(ds);
        check_approximate(
            &RsmiIndex::build(
                wb.pts.clone(),
                &RsmiConfig {
                    leaf_capacity: 256,
                    fanout: 4,
                    ..RsmiConfig::default()
                },
                &elsi.builder(),
            ),
            &wb,
            0.9,
        );
        check_approximate(
            &LisaIndex::build(
                wb.pts.clone(),
                &LisaConfig {
                    grid: 8,
                    shard_size: 150,
                    block_size: 50,
                },
                &elsi.builder().for_lisa(),
            ),
            &wb,
            0.9,
        );
    }
}
