//! Determinism: identical seeds must produce identical data sets, reduced
//! training sets, models and query results — the whole stack is seeded.

use elsi::{Elsi, ElsiConfig, Method, Reduction};
use elsi_data::Dataset;
use elsi_indices::{BuildInput, ModelBuilder, SpatialIndex, ZmConfig, ZmIndex};
use elsi_spatial::{MappedData, MortonMapper, Rect};

#[test]
fn datasets_are_reproducible() {
    for ds in Dataset::all() {
        assert_eq!(ds.generate(500, 9), ds.generate(500, 9), "{ds}");
    }
}

#[test]
fn reductions_are_reproducible() {
    let cfg = ElsiConfig::fast_test();
    let pool = elsi::MrPool::generate(&cfg, 2);
    let data = MappedData::build(Dataset::Skewed.generate(2000, 4), &MortonMapper);
    let input = BuildInput {
        points: data.points(),
        keys: data.keys(),
        mapper: &MortonMapper,
        seed: 17,
    };
    for m in Method::all() {
        let a = elsi::methods::reduce(m, &input, &cfg, &pool);
        let b = elsi::methods::reduce(m, &input, &cfg, &pool);
        match (a, b) {
            (Reduction::TrainingSet(x), Reduction::TrainingSet(y)) => {
                assert_eq!(x, y, "{m}")
            }
            (Reduction::Pretrained(x), Reduction::Pretrained(y)) => {
                assert_eq!(x.params_flat(), y.params_flat(), "{m}")
            }
            _ => panic!("{m}: reduction kind flipped"),
        }
    }
}

#[test]
fn built_indices_answer_identically() {
    let run = || {
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let pts = Dataset::Osm2.generate(1500, 6);
        let idx = ZmIndex::build(pts, &ZmConfig { fanout: 2 }, &elsi.builder());
        let w = Rect::new(0.2, 0.2, 0.6, 0.6);
        let mut ids: Vec<u64> = idx.window_query(&w).iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    };
    assert_eq!(run(), run());
}

#[test]
fn builder_method_choice_is_reproducible() {
    let make = || {
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let b = elsi.random_builder(99);
        let data = MappedData::build(Dataset::Uniform.generate(500, 1), &MortonMapper);
        for _ in 0..5 {
            b.build_model(&BuildInput {
                points: data.points(),
                keys: data.keys(),
                mapper: &MortonMapper,
                seed: 0,
            });
        }
        b.chosen_methods()
    };
    assert_eq!(make(), make());
}
