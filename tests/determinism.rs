//! Determinism: identical seeds must produce identical data sets, reduced
//! training sets, models and query results — the whole stack is seeded.

use elsi::{Elsi, ElsiConfig, Method, Reduction};
use elsi_data::Dataset;
use elsi_indices::{BuildInput, ModelBuilder, SpatialIndex, ZmConfig, ZmIndex};
use elsi_spatial::{MappedData, MortonMapper, Rect};

#[test]
fn datasets_are_reproducible() {
    for ds in Dataset::all() {
        assert_eq!(ds.generate(500, 9), ds.generate(500, 9), "{ds}");
    }
}

#[test]
fn reductions_are_reproducible() {
    let cfg = ElsiConfig::fast_test();
    let pool = elsi::MrPool::generate(&cfg, 2);
    let data = MappedData::build(Dataset::Skewed.generate(2000, 4), &MortonMapper);
    let input = BuildInput {
        points: data.points(),
        keys: data.keys(),
        mapper: &MortonMapper,
        seed: 17,
    };
    for m in Method::all() {
        let a = elsi::methods::reduce(m, &input, &cfg, &pool);
        let b = elsi::methods::reduce(m, &input, &cfg, &pool);
        match (a, b) {
            (Reduction::TrainingSet(x), Reduction::TrainingSet(y)) => {
                assert_eq!(x, y, "{m}")
            }
            (Reduction::Pretrained(x), Reduction::Pretrained(y)) => {
                assert_eq!(x.params_flat(), y.params_flat(), "{m}")
            }
            _ => panic!("{m}: reduction kind flipped"),
        }
    }
}

#[test]
fn built_indices_answer_identically() {
    let run = || {
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let pts = Dataset::Osm2.generate(1500, 6);
        let idx = ZmIndex::build(pts, &ZmConfig { fanout: 2 }, &elsi.builder());
        let w = Rect::new(0.2, 0.2, 0.6, 0.6);
        let mut ids: Vec<u64> = idx.window_query(&w).iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    };
    assert_eq!(run(), run());
}

/// One index's fingerprint: name, per-partition build stats
/// (method, training set size, error span), batch point-query ids,
/// and sorted window-query ids.
type Fingerprint = (
    String,
    Vec<(String, usize, u64)>,
    Vec<Option<u64>>,
    Vec<u64>,
);

/// Builds every learned index over the same data and reduces it to a
/// thread-count-independent fingerprint: build-stat methods and error
/// spans (model weights determine the spans bit-for-bit), batch point
/// query results over all points, and sorted window-query id sets.
fn fingerprint_all_indices() -> Vec<Fingerprint> {
    use elsi_indices::{LisaConfig, LisaIndex, MlConfig, MlIndex, RsmiConfig, RsmiIndex};
    let elsi = Elsi::new(ElsiConfig::fast_test());
    let pts = Dataset::Skewed.generate(3000, 11);
    let probes: Vec<_> = pts.iter().step_by(7).copied().collect();
    let windows = [
        Rect::new(0.1, 0.1, 0.4, 0.4),
        Rect::new(0.0, 0.5, 1.0, 0.7),
        Rect::unit(),
    ];

    let mut out = Vec::new();
    let mut record = |name: &str, stats: &[elsi_indices::BuildStats], idx: &dyn SpatialIndex| {
        let stat_fp: Vec<(String, usize, u64)> = stats
            .iter()
            .map(|s| (s.method.to_string(), s.training_set_size, s.err_span))
            .collect();
        let point_fp: Vec<Option<u64>> = idx
            .par_point_queries(&probes)
            .iter()
            .map(|r| r.map(|p| p.id))
            .collect();
        let mut window_fp: Vec<u64> = idx
            .par_window_queries(&windows)
            .iter()
            .flat_map(|v| v.iter().map(|p| p.id))
            .collect();
        window_fp.sort_unstable();
        out.push((name.to_string(), stat_fp, point_fp, window_fp));
    };

    let zm = ZmIndex::build(pts.clone(), &ZmConfig { fanout: 4 }, &elsi.builder());
    record("ZM", zm.build_stats(), &zm);
    let ml = MlIndex::build(
        pts.clone(),
        &MlConfig {
            pivots: 4,
            ..MlConfig::default()
        },
        &elsi.builder(),
    );
    record("ML", ml.build_stats(), &ml);
    let rsmi = RsmiIndex::build(
        pts.clone(),
        &RsmiConfig {
            leaf_capacity: 256,
            fanout: 4,
            ..RsmiConfig::default()
        },
        &elsi.builder(),
    );
    record("RSMI", rsmi.build_stats(), &rsmi);
    let lisa = LisaIndex::build(
        pts.clone(),
        &LisaConfig {
            grid: 8,
            shard_size: 200,
            block_size: 50,
        },
        &elsi.builder().for_lisa(),
    );
    record("LISA", lisa.build_stats(), &lisa);
    out
}

#[test]
fn parallel_builds_are_bit_identical_across_thread_counts() {
    // The vendored rayon allows re-setting the global thread count; the
    // per-partition seeding must make every build independent of it.
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build_global()
        .unwrap();
    let sequential = fingerprint_all_indices();
    for threads in [2, 4, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .unwrap();
        let parallel = fingerprint_all_indices();
        assert_eq!(sequential, parallel, "divergence at {threads} threads");
    }
    // Restore auto-detection for the rest of the test binary.
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .unwrap();
}

#[test]
fn scorer_cost_features_are_thread_count_independent() {
    // The scorer preparation grid fans cells out on the rayon pool; every
    // cell seeds its own data set, so the cost-feature fields (method, n,
    // dist_u, err_span) must be bit-identical at any thread count. The
    // wall-clock fields are excluded: they are honest per-run measurements.
    let run = |threads: usize| {
        // The vendored pool is re-callable (last call wins); nothing to unwrap.
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global();
        let mut cfg = ElsiConfig::fast_test();
        cfg.train.epochs = 15;
        let elsi = Elsi::new(cfg.clone());
        let costs = elsi::scorer::measure_method_costs(
            &[300, 500],
            &[1, 8],
            &[Method::Sp, Method::Og],
            &cfg,
            &elsi.mr_pool(),
            21,
        );
        costs
            .iter()
            .map(|c| (c.method.to_string(), c.n, c.dist_u.to_bits(), c.err_span))
            .collect::<Vec<_>>()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel);
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global();
}

#[test]
fn random_builder_is_schedule_independent() {
    // The Rand ablation seeds each choice from the partition seed, so the
    // methods chosen for a ZM build form the same multiset (and the built
    // index the same models) at any thread count.
    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .unwrap();
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let b = elsi.random_builder(1234);
        let pts = Dataset::Uniform.generate(2000, 3);
        let idx = ZmIndex::build(pts, &ZmConfig { fanout: 4 }, &b);
        let mut chosen: Vec<String> = b.chosen_methods().iter().map(|m| m.to_string()).collect();
        chosen.sort();
        let spans: Vec<u64> = idx.build_stats().iter().map(|s| s.err_span).collect();
        (chosen, spans)
    };
    let (chosen_1, spans_1) = run(1);
    let (chosen_4, spans_4) = run(4);
    assert_eq!(chosen_1, chosen_4);
    assert_eq!(spans_1, spans_4);
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .unwrap();
}

#[test]
fn builder_method_choice_is_reproducible() {
    let make = || {
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let b = elsi.random_builder(99);
        let data = MappedData::build(Dataset::Uniform.generate(500, 1), &MortonMapper);
        for _ in 0..5 {
            b.build_model(&BuildInput {
                points: data.points(),
                keys: data.keys(),
                mapper: &MortonMapper,
                seed: 0,
            });
        }
        b.chosen_methods()
    };
    assert_eq!(make(), make());
}
