//! Determinism: identical seeds must produce identical data sets, reduced
//! training sets, models and query results — the whole stack is seeded.

use elsi::{Elsi, ElsiConfig, Method, Reduction};
use elsi_data::Dataset;
use elsi_indices::{BuildInput, ModelBuilder, SpatialIndex, ZmConfig, ZmIndex};
use elsi_spatial::{MappedData, MortonMapper, Point, Rect};

#[test]
fn datasets_are_reproducible() {
    for ds in Dataset::all() {
        assert_eq!(ds.generate(500, 9), ds.generate(500, 9), "{ds}");
    }
}

#[test]
fn reductions_are_reproducible() {
    let cfg = ElsiConfig::fast_test();
    let pool = elsi::MrPool::generate(&cfg, 2);
    let data = MappedData::build(Dataset::Skewed.generate(2000, 4), &MortonMapper);
    let input = BuildInput {
        points: data.points(),
        keys: data.keys(),
        mapper: &MortonMapper,
        seed: 17,
    };
    for m in Method::all() {
        let a = elsi::methods::reduce(m, &input, &cfg, &pool);
        let b = elsi::methods::reduce(m, &input, &cfg, &pool);
        match (a, b) {
            (Reduction::TrainingSet(x), Reduction::TrainingSet(y)) => {
                assert_eq!(x, y, "{m}")
            }
            (Reduction::Pretrained(x), Reduction::Pretrained(y)) => {
                assert_eq!(x.params_flat(), y.params_flat(), "{m}")
            }
            _ => panic!("{m}: reduction kind flipped"),
        }
    }
}

#[test]
fn built_indices_answer_identically() {
    let run = || {
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let pts = Dataset::Osm2.generate(1500, 6);
        let idx = ZmIndex::build(pts, &ZmConfig { fanout: 2 }, &elsi.builder());
        let w = Rect::new(0.2, 0.2, 0.6, 0.6);
        let mut ids: Vec<u64> = idx.window_query(&w).iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids
    };
    assert_eq!(run(), run());
}

/// One index's fingerprint: name, per-partition build stats
/// (method, training set size, error span), batch point-query ids,
/// and sorted window-query ids.
type Fingerprint = (
    String,
    Vec<(String, usize, u64)>,
    Vec<Option<u64>>,
    Vec<u64>,
);

/// Builds every learned index over the same data and reduces it to a
/// thread-count-independent fingerprint: build-stat methods and error
/// spans (model weights determine the spans bit-for-bit), batch point
/// query results over all points, and sorted window-query id sets.
fn fingerprint_all_indices() -> Vec<Fingerprint> {
    use elsi_indices::{LisaConfig, LisaIndex, MlConfig, MlIndex, RsmiConfig, RsmiIndex};
    let elsi = Elsi::new(ElsiConfig::fast_test());
    let pts = Dataset::Skewed.generate(3000, 11);
    let probes: Vec<_> = pts.iter().step_by(7).copied().collect();
    let windows = [
        Rect::new(0.1, 0.1, 0.4, 0.4),
        Rect::new(0.0, 0.5, 1.0, 0.7),
        Rect::unit(),
    ];

    let mut out = Vec::new();
    let mut record = |name: &str, stats: &[elsi_indices::BuildStats], idx: &dyn SpatialIndex| {
        let stat_fp: Vec<(String, usize, u64)> = stats
            .iter()
            .map(|s| (s.method.to_string(), s.training_set_size, s.err_span))
            .collect();
        let point_fp: Vec<Option<u64>> = idx
            .par_point_queries(&probes)
            .iter()
            .map(|r| r.map(|p| p.id))
            .collect();
        let mut window_fp: Vec<u64> = idx
            .par_window_queries(&windows)
            .iter()
            .flat_map(|v| v.iter().map(|p| p.id))
            .collect();
        window_fp.sort_unstable();
        out.push((name.to_string(), stat_fp, point_fp, window_fp));
    };

    let zm = ZmIndex::build(pts.clone(), &ZmConfig { fanout: 4 }, &elsi.builder());
    record("ZM", zm.build_stats(), &zm);
    let ml = MlIndex::build(
        pts.clone(),
        &MlConfig {
            pivots: 4,
            ..MlConfig::default()
        },
        &elsi.builder(),
    );
    record("ML", ml.build_stats(), &ml);
    let rsmi = RsmiIndex::build(
        pts.clone(),
        &RsmiConfig {
            leaf_capacity: 256,
            fanout: 4,
            ..RsmiConfig::default()
        },
        &elsi.builder(),
    );
    record("RSMI", rsmi.build_stats(), &rsmi);
    let lisa = LisaIndex::build(
        pts.clone(),
        &LisaConfig {
            grid: 8,
            shard_size: 200,
            block_size: 50,
        },
        &elsi.builder().for_lisa(),
    );
    record("LISA", lisa.build_stats(), &lisa);
    out
}

#[test]
fn parallel_builds_are_bit_identical_across_thread_counts() {
    // The vendored rayon allows re-setting the global thread count; the
    // per-partition seeding must make every build independent of it.
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build_global()
        .unwrap();
    let sequential = fingerprint_all_indices();
    for threads in [2, 4, 8] {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .unwrap();
        let parallel = fingerprint_all_indices();
        assert_eq!(sequential, parallel, "divergence at {threads} threads");
    }
    // Restore auto-detection for the rest of the test binary.
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .unwrap();
}

#[test]
fn scorer_cost_features_are_thread_count_independent() {
    // The scorer preparation grid fans cells out on the rayon pool; every
    // cell seeds its own data set, so the cost-feature fields (method, n,
    // dist_u, err_span) must be bit-identical at any thread count. The
    // wall-clock fields are excluded: they are honest per-run measurements.
    let run = |threads: usize| {
        // The vendored pool is re-callable (last call wins); nothing to unwrap.
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global();
        let mut cfg = ElsiConfig::fast_test();
        cfg.train.epochs = 15;
        let elsi = Elsi::new(cfg.clone());
        let costs = elsi::scorer::measure_method_costs(
            &[300, 500],
            &[1, 8],
            &[Method::Sp, Method::Og],
            &cfg,
            &elsi.mr_pool(),
            21,
        );
        costs
            .iter()
            .map(|c| (c.method.to_string(), c.n, c.dist_u.to_bits(), c.err_span))
            .collect::<Vec<_>>()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel);
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global();
}

#[test]
fn random_builder_is_schedule_independent() {
    // The Rand ablation seeds each choice from the partition seed, so the
    // methods chosen for a ZM build form the same multiset (and the built
    // index the same models) at any thread count.
    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .unwrap();
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let b = elsi.random_builder(1234);
        let pts = Dataset::Uniform.generate(2000, 3);
        let idx = ZmIndex::build(pts, &ZmConfig { fanout: 4 }, &b);
        let mut chosen: Vec<String> = b.chosen_methods().iter().map(|m| m.to_string()).collect();
        chosen.sort();
        let spans: Vec<u64> = idx.build_stats().iter().map(|s| s.err_span).collect();
        (chosen, spans)
    };
    let (chosen_1, spans_1) = run(1);
    let (chosen_4, spans_4) = run(4);
    assert_eq!(chosen_1, chosen_4);
    assert_eq!(spans_1, spans_4);
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .unwrap();
}

/// Builds all eight index structures over `pts` and hands each to `f`,
/// together with whether its window queries are exact (RSMI and LISA are
/// approximate by design, paper §VII-G2).
fn for_all_eight_indices(pts: &[Point], mut f: impl FnMut(&str, bool, &dyn SpatialIndex)) {
    use elsi_indices::{
        GridConfig, GridIndex, HrrConfig, HrrIndex, KdbConfig, KdbIndex, LisaConfig, LisaIndex,
        MlConfig, MlIndex, RStarConfig, RStarIndex, RsmiConfig, RsmiIndex,
    };
    let elsi = Elsi::new(ElsiConfig::fast_test());
    f(
        "Grid",
        true,
        &GridIndex::build(pts.to_vec(), &GridConfig { block_size: 64 }),
    );
    f(
        "KDB",
        true,
        &KdbIndex::build(pts.to_vec(), &KdbConfig { leaf_capacity: 64 }),
    );
    f(
        "HRR",
        true,
        &HrrIndex::build(
            pts.to_vec(),
            &HrrConfig {
                leaf_capacity: 64,
                fanout: 8,
            },
        ),
    );
    f(
        "R*",
        true,
        &RStarIndex::build(
            pts.to_vec(),
            &RStarConfig {
                leaf_capacity: 64,
                fanout: 8,
                min_fill: 0.4,
            },
        ),
    );
    f(
        "ZM",
        true,
        &ZmIndex::build(pts.to_vec(), &ZmConfig { fanout: 4 }, &elsi.builder()),
    );
    f(
        "ML",
        true,
        &MlIndex::build(
            pts.to_vec(),
            &MlConfig {
                pivots: 4,
                ..MlConfig::default()
            },
            &elsi.builder(),
        ),
    );
    f(
        "RSMI",
        false,
        &RsmiIndex::build(
            pts.to_vec(),
            &RsmiConfig {
                leaf_capacity: 256,
                fanout: 4,
                ..RsmiConfig::default()
            },
            &elsi.builder(),
        ),
    );
    f(
        "LISA",
        false,
        &LisaIndex::build(
            pts.to_vec(),
            &LisaConfig {
                grid: 8,
                shard_size: 200,
                block_size: 50,
            },
            &elsi.builder().for_lisa(),
        ),
    );
}

/// Everything a query hands back, reduced to bits: id plus the raw
/// coordinate bit patterns, in returned order.
fn point_bits(p: &Point) -> (u64, u64, u64) {
    (p.id, p.x.to_bits(), p.y.to_bits())
}

/// One index's full query fingerprint: batch point-query results, window
/// results in returned order, kNN results in returned order.
type PointBits = (u64, u64, u64);
type QueryFp = (
    String,
    Vec<Option<PointBits>>,
    Vec<Vec<PointBits>>,
    Vec<Vec<PointBits>>,
);

/// Runs one shared point/window/kNN workload through all eight indices and
/// captures the results bit-for-bit in returned order. Any scheduling
/// dependence in the batched query fan-out or the scan kernels shows up as
/// a fingerprint mismatch across thread counts.
fn query_fingerprints_all_eight() -> Vec<QueryFp> {
    let pts = Dataset::Skewed.generate(1500, 23);
    let probes: Vec<Point> = pts.iter().step_by(11).copied().collect();
    let windows = [
        Rect::new(0.05, 0.05, 0.35, 0.3),
        Rect::new(0.4, 0.1, 0.9, 0.55),
        Rect::unit(),
    ];
    let knn_qs: Vec<Point> = pts.iter().step_by(97).copied().collect();
    let mut out: Vec<QueryFp> = Vec::new();
    for_all_eight_indices(&pts, |name, _exact, idx| {
        let point_fp = idx
            .par_point_queries(&probes)
            .iter()
            .map(|r| r.as_ref().map(point_bits))
            .collect();
        let window_fp = idx
            .par_window_queries(&windows)
            .iter()
            .map(|v| v.iter().map(point_bits).collect())
            .collect();
        let knn_fp = idx
            .par_knn_queries(&knn_qs, 7)
            .iter()
            .map(|v| v.iter().map(point_bits).collect())
            .collect();
        out.push((name.to_string(), point_fp, window_fp, knn_fp));
    });
    out
}

#[test]
fn queries_are_bit_identical_across_thread_counts() {
    // The vendored pool is re-callable (last call wins); nothing to unwrap.
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build_global();
    let single = query_fingerprints_all_eight();
    for threads in [2, 8] {
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global();
        let multi = query_fingerprints_all_eight();
        assert_eq!(single, multi, "query divergence at {threads} threads");
    }
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global();
}

#[test]
fn window_oracle_and_canonical_knn_order_hold_for_every_index() {
    let pts = Dataset::Nyc.generate(2000, 41);
    let windows = [
        Rect::new(0.1, 0.1, 0.45, 0.4),
        Rect::new(0.3, 0.5, 0.8, 0.95),
        Rect::unit(),
    ];
    let knn_qs: Vec<Point> = pts.iter().step_by(131).copied().collect();
    for_all_eight_indices(&pts, |name, exact, idx| {
        for w in &windows {
            let got = idx.window_query(w);
            assert!(
                got.iter().all(|p| w.contains(p)),
                "{name}: window false positive"
            );
            if exact {
                let mut got_ids: Vec<u64> = got.iter().map(|p| p.id).collect();
                got_ids.sort_unstable();
                got_ids.dedup();
                let mut want: Vec<u64> =
                    pts.iter().filter(|p| w.contains(p)).map(|p| p.id).collect();
                want.sort_unstable();
                assert_eq!(got_ids, want, "{name}: window vs brute force");
            }
        }
        // kNN responses come back in the canonical order the scan kernels
        // promise: ascending squared distance, ties by (id, x bits, y bits).
        // dist2 is non-negative, so its bit pattern orders like total_cmp.
        for &q in &knn_qs {
            let got = idx.knn_query(q, 9);
            let keys: Vec<(u64, u64, u64, u64)> = got
                .iter()
                .map(|p| (q.dist2(p).to_bits(), p.id, p.x.to_bits(), p.y.to_bits()))
                .collect();
            assert!(
                keys.windows(2).all(|w| w.first() <= w.last()),
                "{name}: kNN result out of canonical order"
            );
        }
    });
}

#[test]
fn builder_method_choice_is_reproducible() {
    let make = || {
        let elsi = Elsi::new(ElsiConfig::fast_test());
        let b = elsi.random_builder(99);
        let data = MappedData::build(Dataset::Uniform.generate(500, 1), &MortonMapper);
        for _ in 0..5 {
            b.build_model(&BuildInput {
                points: data.points(),
                keys: data.keys(),
                mapper: &MortonMapper,
                seed: 0,
            });
        }
        b.chosen_methods()
    };
    assert_eq!(make(), make());
}
