//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `pat in strategy` arguments,
//! range / tuple / `prop::collection::vec` / `any::<T>()` strategies, and
//! `prop_assert!` / `prop_assert_eq!`. Case generation is deterministic
//! (seeded per test from the case counter); failing cases are reported by
//! panic with the generated inputs' case number. No shrinking.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

pub mod test_runner {
    //! Runner configuration.

    /// Controls how many random cases each property test runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// The RNG handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-case RNG: a pure function of the case number.
    pub fn for_case(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(
            0xE15A_9E37_u64.wrapping_mul(case.wrapping_add(1)),
        ))
    }

    fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }

    fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n)
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Map the closed unit interval onto [start, end].
        let u = (rng.below(1u64 << 53) as f64) / ((1u64 << 53) - 1) as f64;
        self.start() + u * (self.end() - self.start())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.below(u64::MAX) as $t; // practically unreachable
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_int_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a full-domain default strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias towards boundary values so edge cases show up in
                // a 64-case run, like upstream's special-value weighting.
                match rng.below(8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => 1,
                    _ => rng.below(1 << (<$t>::BITS.min(63))) as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, usize);

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        match rng.below(8) {
            0 => 0,
            1 => u64::MAX,
            2 => 1,
            _ => rng.below(u64::MAX),
        }
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(8) {
            0 => 0.0,
            1 => 1.0,
            2 => -1.0,
            _ => rng.unit_f64() * 2e3 - 1e3,
        }
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len_lo: usize,
        len_hi: usize, // exclusive
    }

    /// Accepted length specifiers for [`vec`].
    pub trait IntoLenRange {
        /// (lo, exclusive hi).
        fn bounds(self) -> (usize, usize);
    }

    impl IntoLenRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoLenRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoLenRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// `vec(element, 1..100)`: vectors of 1..100 generated elements.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (len_lo, len_hi) = len.bounds();
        assert!(len_lo < len_hi, "empty length range for collection::vec");
        VecStrategy {
            element,
            len_lo,
            len_hi,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len_hi - self.len_lo) as u64;
            let n = self.len_lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`).
        pub use crate::collection;
    }
}

/// Assert inside a property test; panics (fails the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The `proptest!` block: expands each `fn name(pat in strategy, ..)` into
/// a `#[test]` that loops over deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases as u64 {
                let rng = &mut $crate::TestRng::for_case(case);
                let ($($pat,)+) = ($( $crate::Strategy::generate(&($strat), rng), )+);
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples(x in 0.0f64..1.0, (a, b) in (1usize..10, 0u32..5)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 5, "b was {}", b);
        }

        #[test]
        fn vectors_respect_bounds(mut v in prop::collection::vec(0.0f64..=1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            v.sort_by(|p, q| p.partial_cmp(q).unwrap());
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(v.iter().all(|e| (0.0..=1.0).contains(e)));
        }

        #[test]
        fn any_hits_boundaries(x in any::<u32>()) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let g = |case| {
            let mut rng = crate::TestRng::for_case(case);
            crate::Strategy::generate(&(0.0f64..1.0), &mut rng)
        };
        assert_eq!(g(3), g(3));
        assert_ne!(g(3), g(4));
    }
}
