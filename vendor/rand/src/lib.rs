//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no network access, so the workspace vendors
//! the exact API surface it consumes: `StdRng` (seeded, deterministic),
//! the `Rng`/`SeedableRng` traits, `seq::SliceRandom::shuffle`, and
//! `seq::index::sample`. The generator is xoshiro256++ seeded through
//! SplitMix64 — not the upstream ChaCha12, but the workspace only relies
//! on *determinism for a given seed*, never on a specific stream.

#![warn(missing_docs)]

pub mod rngs {
    //! Named RNG types (`StdRng`).

    /// A deterministic, seedable pseudo-random generator: xoshiro256++
    /// with SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }

        /// Advance the generator and return the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// Types whose values can be produced uniformly by [`Rng::gen`]
/// (stand-in for sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample_standard(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn sample_standard(rng: &mut rngs::StdRng) -> f64 {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut rngs::StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut rngs::StdRng) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as `gen_range` endpoints.
pub trait RangeInt: Copy + PartialOrd {
    /// Widen to u64 (shifting signed types into unsigned order).
    fn to_u64(self) -> u64;
    /// Inverse of [`RangeInt::to_u64`].
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_int_unsigned {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_range_int_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl RangeInt for $t {
            fn to_u64(self) -> u64 { (self as $u) as u64 ^ (1u64 << (<$u>::BITS - 1)) }
            fn from_u64(v: u64) -> Self { (v ^ (1u64 << (<$u>::BITS - 1))) as $u as $t }
        }
    )*};
}
impl_range_int_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics when empty.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

fn uniform_u64_below(rng: &mut rngs::StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling on the top bits keeps the draw unbiased.
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl<T: RangeInt> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range called with an empty range");
        T::from_u64(lo + uniform_u64_below(rng, hi - lo))
    }
}

impl<T: RangeInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range called with an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_u64_below(rng, span + 1))
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing generator trait (subset of rand's `Rng`).
pub trait Rng {
    /// Draw one value of an inferred [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draw uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

/// Construction from seeds (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

pub mod seq {
    //! Sequence utilities (`SliceRandom`, `index::sample`).

    use super::{rngs::StdRng, Rng};

    /// Slice shuffling (subset of rand's `SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        //! Distinct-index sampling.

        use super::super::{rngs::StdRng, Rng};

        /// The result of [`sample`]: distinct indices in draw order.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The sampled indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates). Panics if `amount > length`, as upstream does.
        pub fn sample(rng: &mut StdRng, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::{index::sample, SliceRandom};
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.gen_range(2usize..=5);
            assert!((2..=5).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 5;
            let w = r.gen_range(0..3u32);
            assert!(w < 3);
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_distinct() {
        let mut r = StdRng::seed_from_u64(11);
        let idx: Vec<usize> = sample(&mut r, 100, 10).into_iter().collect();
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(idx.iter().all(|&i| i < 100));
    }
}
