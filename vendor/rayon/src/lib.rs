//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset this workspace uses on top of `std::thread::scope`:
//! `par_iter()` / `into_par_iter()` with order-preserving `map` + `collect`
//! / `for_each`, `join`, `current_num_threads`, and a `ThreadPoolBuilder`
//! whose `num_threads(..).build_global()` sets a process-wide thread count.
//!
//! Differences from upstream, deliberately:
//! - No work stealing: items are split into `current_num_threads()`
//!   contiguous chunks, one OS thread per chunk, results concatenated in
//!   input order.
//! - `build_global` may be called repeatedly; the last call wins. The
//!   determinism tests rely on this to rebuild the same index under
//!   different thread counts within one process.
//! - With one thread (or one item) everything runs inline on the caller's
//!   stack — zero spawn overhead, bit-identical to the multi-thread path.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The number of threads parallel operations will use.
pub fn current_num_threads() -> usize {
    match NUM_THREADS.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Error type for [`ThreadPoolBuilder::build_global`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool configuration failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Configures the process-wide thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start a builder with the default (auto-detected) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use exactly `n` threads; `0` restores auto-detection.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the setting globally. Unlike upstream, repeat calls are
    /// allowed and the most recent call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        NUM_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        (a(), b())
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon::join closure panicked"))
        })
    }
}

/// Order-preserving parallel map: the engine behind `map().collect()`.
fn run_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk_len).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let per_chunk: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel map closure panicked"))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel, preserving order.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_map(self.items, |t| f(t));
    }
}

/// A pending parallel map, realized by `collect` / `for_each`.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Execute the map and collect results in input order.
    pub fn collect<C>(self) -> C
    where
        F: Sync + Fn(T) -> C::Item,
        C: FromParallelIterator,
    {
        C::from_ordered_vec(run_map(self.items, self.f))
    }

    /// Execute the map for its side effects.
    pub fn for_each<U: Send>(self, g: impl Fn(U) + Sync)
    where
        F: Sync + Fn(T) -> U,
    {
        run_map(self.items, |t| g((self.f)(t)));
    }
}

/// Collections constructible from an ordered parallel result.
pub trait FromParallelIterator {
    /// Element type.
    type Item: Send;
    /// Build from the already-ordered results.
    fn from_ordered_vec(v: Vec<Self::Item>) -> Self;
}

impl<U: Send> FromParallelIterator for Vec<U> {
    type Item = U;
    fn from_ordered_vec(v: Vec<U>) -> Self {
        v
    }
}

/// Types convertible into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Types whose references can be iterated in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order_across_thread_counts() {
        let input: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * x).collect();
        for t in [1, 2, 3, 8] {
            ThreadPoolBuilder::new()
                .num_threads(t)
                .build_global()
                .unwrap();
            let got: Vec<u64> = input.clone().into_par_iter().map(|x| x * x).collect();
            assert_eq!(got, expect, "thread count {t}");
        }
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u32, 2, 3, 4, 5];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn ranges_parallelize() {
        let squares: Vec<usize> = (0usize..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[99], 9801);
    }
}
