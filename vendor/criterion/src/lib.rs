//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group` (with `sample_size` / `finish`),
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple calibrated wall-clock
//! loop reporting the median and spread over samples; there is no plotting,
//! baseline persistence, or statistical regression machinery.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-iteration timer handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Calibrate the per-sample iteration count so one sample costs
    // roughly `TARGET`, then keep it fixed across samples.
    const TARGET: Duration = Duration::from_millis(20);
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET.as_secs_f64() / per_iter.as_secs_f64()).clamp(1.0, 1e7) as u64;

    let mut times: Vec<Duration> = (0..samples.max(3))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / (iters as u32)
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    let lo = times[0];
    let hi = times[times.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi)
    );
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.as_ref()), self.samples, f);
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.samples, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            samples: self.samples,
            _parent: self,
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench binaries with `--test`; skip the
            // (expensive) timing loops there, as upstream does via its
            // own arg parsing.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        c.samples = 3;
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(3)
            .bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }
}
